"""A pure-Python CDCL SAT solver.

Implements the standard modern-solver loop at a scale suited to this
repository's quick-scale circuits:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and self-subsumption
  clause minimization (``stats["minimized_lits"]`` counts removed
  literals),
* VSIDS-style variable activities with exponential decay and phase saving,
* geometric restarts,
* glue/LBD-scored learned-clause database reduction, so long incremental
  sessions (a DIP loop retaining everything it learned) do not grow the
  clause store without bound (``stats["db_reductions"]`` /
  ``stats["learned_deleted"]``),
* incremental use: clauses may be added between ``solve`` calls and each
  call may carry *assumptions* — temporary unit decisions the SAT attack
  uses to toggle its miter constraint while accumulating learned I/O
  constraints across DIP iterations.

Literals follow the DIMACS convention externally (signed non-zero ints);
internally each literal is an even/odd index ``2*var + sign`` so negation
is ``^ 1``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import SatError
from repro.obs import metrics as _metrics
from repro.obs.trace import get_tracer
from repro.sat.cnf import Cnf

_RESTART_BASE = 100
_RESTART_GROWTH = 1.5
_ACTIVITY_RESCALE = 1e100
#: Learned clauses with LBD at or below this are "glue" and never deleted.
_GLUE_LBD = 2


@dataclass
class SolverResult:
    """Outcome of one ``solve`` call."""

    satisfiable: bool
    model: Optional[dict[int, bool]] = None
    assumption_failed: bool = False
    stats: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.satisfiable

    def value(self, var: int) -> bool:
        if self.model is None:
            raise SatError("no model: instance was unsatisfiable")
        return self.model[var]


class CdclSolver:
    """Conflict-driven clause-learning solver over DIMACS-style literals."""

    def __init__(
        self,
        cnf: Optional[Cnf] = None,
        var_decay: float = 0.95,
        reduce_base: int = 2000,
        reduce_growth: int = 512,
        minimize: bool = True,
    ):
        self._nvars = 0
        self._clauses: list[list[int]] = []
        self._learned: list[list[int]] = []
        self._lbd: dict[int, int] = {}  # id(clause) -> glue score
        self._learned_count = 0
        self._reduce_limit = reduce_base
        self._reduce_growth = reduce_growth
        self._minimize = minimize
        self._watches: list[list[list[int]]] = [[], []]
        self._assign: list[Optional[bool]] = [None]
        self._level: list[int] = [0]
        self._reason: list[Optional[list[int]]] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._heap: list[tuple[float, int]] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._var_decay = var_decay
        self._unsat = False
        self.stats = {
            "decisions": 0,
            "conflicts": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "minimized_lits": 0,
            "learned_kept": 0,
            "learned_deleted": 0,
            "db_reductions": 0,
        }
        # High-water marks of what solve() has already folded into the
        # metrics registry (see repro.obs.metrics).
        self._stats_folded: dict[str, int] = {}
        if cnf is not None:
            self.ensure_vars(cnf.num_vars)
            for clause in cnf.clauses:
                self.add_clause(clause)

    # -- variables ------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._nvars

    def new_var(self) -> int:
        """Allocate one fresh variable and return it."""
        self.ensure_vars(self._nvars + 1)
        return self._nvars

    def ensure_vars(self, count: int) -> None:
        while self._nvars < count:
            self._nvars += 1
            self._watches.extend(([], []))
            self._assign.append(None)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            heapq.heappush(self._heap, (0.0, self._nvars))

    def _to_idx(self, lit: int) -> int:
        var = abs(lit)
        if lit == 0 or var > self._nvars:
            raise SatError(f"literal {lit} out of range (have {self._nvars} vars)")
        return (var << 1) | (lit < 0)

    def _lit_value(self, idx: int) -> Optional[bool]:
        value = self._assign[idx >> 1]
        if value is None:
            return None
        return value != bool(idx & 1)

    # -- clause management ----------------------------------------------------

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause; may be called between ``solve`` calls."""
        self._backtrack(0)
        clause: list[int] = []
        seen: set[int] = set()
        for lit in lits:
            idx = self._to_idx(lit)
            if idx in seen:
                continue
            if idx ^ 1 in seen:
                return  # tautology
            value = self._lit_value(idx)
            if value is True:
                return  # satisfied by a permanent (level-0) assignment
            if value is False:
                continue  # permanently false literal
            seen.add(idx)
            clause.append(idx)
        if not clause:
            self._unsat = True
            return
        if len(clause) == 1:
            self._enqueue(clause[0], None)
            if self._propagate() is not None:
                self._unsat = True
            return
        self._attach(clause)

    def _attach(
        self, clause: list[int], learned: bool = False, lbd: Optional[int] = None
    ) -> None:
        if learned:
            self._learned.append(clause)
            self._lbd[id(clause)] = lbd if lbd is not None else len(clause)
        else:
            self._clauses.append(clause)
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)

    def _reduce_db(self) -> None:
        """Delete the worst half of the deletable learned clauses.

        Called at decision level 0.  Glue clauses (LBD <= ``_GLUE_LBD``),
        binary clauses and clauses currently acting as the reason for a
        trail assignment are always kept; the rest are ranked by
        (LBD, length) and the worse half dropped, rebuilding the watch
        lists from the survivors.  Deleting a learned clause is always
        sound — every learned clause is implied by the problem clauses.
        """
        locked = {
            id(self._reason[idx >> 1])
            for idx in self._trail
            if self._reason[idx >> 1] is not None
        }
        keep: list[list[int]] = []
        deletable: list[tuple[int, int, int, list[int]]] = []
        for position, clause in enumerate(self._learned):
            glue = self._lbd.get(id(clause), len(clause))
            if glue <= _GLUE_LBD or len(clause) <= 2 or id(clause) in locked:
                keep.append(clause)
            else:
                deletable.append((glue, len(clause), position, clause))
        deletable.sort(key=lambda entry: entry[:3])
        half = len(deletable) // 2
        keep.extend(entry[3] for entry in deletable[:half])
        dropped = deletable[half:]
        for _, _, _, clause in dropped:
            self._lbd.pop(id(clause), None)
        self._learned = keep
        self._watches = [[] for _ in range(2 * self._nvars + 2)]
        for clause in self._clauses:
            self._watches[clause[0]].append(clause)
            self._watches[clause[1]].append(clause)
        for clause in self._learned:
            self._watches[clause[0]].append(clause)
            self._watches[clause[1]].append(clause)
        self.stats["db_reductions"] += 1
        self.stats["learned_deleted"] += len(dropped)
        self.stats["learned_kept"] = len(self._learned)
        self._reduce_limit += self._reduce_growth

    # -- assignment and propagation -------------------------------------------

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, idx: int, reason: Optional[list[int]]) -> None:
        var = idx >> 1
        self._assign[var] = not bool(idx & 1)
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(idx)

    def _propagate(self) -> Optional[list[int]]:
        """Unit propagation to fixpoint; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats["propagations"] += 1
            falsified = lit ^ 1
            watchers = self._watches[falsified]
            self._watches[falsified] = []
            while watchers:
                clause = watchers.pop()
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    self._watches[falsified].append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                self._watches[falsified].append(clause)
                if self._lit_value(first) is False:
                    self._watches[falsified].extend(watchers)
                    self._qhead = len(self._trail)
                    return clause
                self._enqueue(first, clause)
        return None

    def _backtrack(self, level: int) -> None:
        while len(self._trail_lim) > level:
            limit = self._trail_lim.pop()
            for idx in self._trail[limit:]:
                var = idx >> 1
                self._phase[var] = not bool(idx & 1)
                self._assign[var] = None
                self._reason[var] = None
                heapq.heappush(self._heap, (-self._activity[var], var))
            del self._trail[limit:]
        self._qhead = min(self._qhead, len(self._trail))

    # -- conflict analysis -----------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _ACTIVITY_RESCALE:
            for v in range(1, self._nvars + 1):
                self._activity[v] *= 1.0 / _ACTIVITY_RESCALE
            self._var_inc *= 1.0 / _ACTIVITY_RESCALE
        heapq.heappush(self._heap, (-self._activity[var], var))

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int, int]:
        """First-UIP analysis: (learned clause, backjump level, LBD).

        The learned clause's first literal is the asserting (UIP) literal.
        The LBD ("glue") is the number of distinct decision levels in the
        clause — low-LBD clauses are the valuable ones the database
        reduction pass must never delete.
        """
        current = self._decision_level()
        seen = bytearray(self._nvars + 1)
        learned: list[int] = []
        counter = 0
        uip: Optional[int] = None
        index = len(self._trail)
        clause: Optional[list[int]] = conflict
        while True:
            assert clause is not None
            start = 1 if uip is not None else 0
            for lit in clause[start:]:
                var = lit >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = 1
                    self._bump(var)
                    if self._level[var] >= current:
                        counter += 1
                    else:
                        learned.append(lit)
            while True:
                index -= 1
                if seen[self._trail[index] >> 1]:
                    break
            uip = self._trail[index]
            clause = self._reason[uip >> 1]
            seen[uip >> 1] = 0
            counter -= 1
            if counter == 0:
                break
        result = [uip ^ 1] + learned
        if self._minimize and len(result) > 1:
            # Self-subsumption: a non-asserting literal is redundant when its
            # reason's other literals are all in the clause (or fixed at
            # level 0) — resolving it away, in reverse trail order, only
            # reintroduces literals already present.
            marked = {lit >> 1 for lit in result}
            kept = [result[0]]
            for lit in result[1:]:
                reason = self._reason[lit >> 1]
                if reason is not None and all(
                    (rlit >> 1) in marked or self._level[rlit >> 1] == 0
                    for rlit in reason
                    if (rlit >> 1) != (lit >> 1)
                ):
                    self.stats["minimized_lits"] += 1
                else:
                    kept.append(lit)
            result = kept
        glue = len({self._level[lit >> 1] for lit in result})
        if len(result) == 1:
            return result, 0, glue
        # Watch the highest-level non-asserting literal at position 1 so the
        # clause stays correctly watched right after the backjump.
        best = max(range(1, len(result)), key=lambda i: self._level[result[i] >> 1])
        result[1], result[best] = result[best], result[1]
        return result, self._level[result[1] >> 1], glue

    # -- search ----------------------------------------------------------------

    def _pick_branch(self) -> Optional[int]:
        while self._heap:
            _, var = heapq.heappop(self._heap)
            if self._assign[var] is None:
                return (var << 1) | (not self._phase[var])
        for var in range(1, self._nvars + 1):
            if self._assign[var] is None:
                return (var << 1) | (not self._phase[var])
        return None

    def solve(self, assumptions: Sequence[int] = ()) -> SolverResult:
        """Search for a model extending ``assumptions``.

        Returns a :class:`SolverResult`; ``assumption_failed`` distinguishes
        "unsatisfiable under these assumptions" from global unsatisfiability.
        Learned clauses and activities persist across calls.
        """
        # Telemetry wraps the whole call: the hot CDCL loop below touches
        # only the private stats dict, and deltas are folded into the
        # process metrics registry exactly once on the way out.  The fold
        # covers everything since the *previous* fold — clause additions
        # between calls propagate at level 0, and those counts would
        # otherwise never reach the registry.
        with get_tracer().span("sat.solve", vars=self._nvars) as span:
            result = self._solve_impl(assumptions)
            for key in (
                "conflicts",
                "decisions",
                "propagations",
                "restarts",
                "db_reductions",
                "learned_deleted",
            ):
                delta = self.stats[key] - self._stats_folded.get(key, 0)
                if delta:
                    _metrics.inc(f"sat.{key}", delta)
                    self._stats_folded[key] = self.stats[key]
            span.set(sat=result.satisfiable)
        return result

    def _solve_impl(self, assumptions: Sequence[int] = ()) -> SolverResult:
        if self._unsat:
            return SolverResult(False, stats=dict(self.stats))
        self._backtrack(0)
        assumed = [self._to_idx(lit) for lit in assumptions]
        if self._propagate() is not None:
            self._unsat = True
            return SolverResult(False, stats=dict(self.stats))
        conflicts_before_restart = _RESTART_BASE
        restart_limit = float(_RESTART_BASE)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats["conflicts"] += 1
                if self._decision_level() == 0:
                    self._unsat = True
                    return SolverResult(False, stats=dict(self.stats))
                learned, backjump, glue = self._analyze(conflict)
                self._backtrack(backjump)
                if len(learned) == 1:
                    self._enqueue(learned[0], None)
                else:
                    self._attach(learned, learned=True, lbd=glue)
                    self._learned_count += 1
                    self.stats["learned"] += 1
                    self._enqueue(learned[0], learned)
                self._var_inc /= self._var_decay
                conflicts_before_restart -= 1
                if conflicts_before_restart <= 0:
                    self.stats["restarts"] += 1
                    restart_limit *= _RESTART_GROWTH
                    conflicts_before_restart = int(restart_limit)
                    self._backtrack(0)
                if len(self._learned) >= self._reduce_limit:
                    self._backtrack(0)
                    self._reduce_db()
                continue
            branch: Optional[int] = None
            failed = False
            while self._decision_level() < len(assumed):
                lit = assumed[self._decision_level()]
                value = self._lit_value(lit)
                if value is True:
                    self._trail_lim.append(len(self._trail))
                elif value is False:
                    failed = True
                    break
                else:
                    branch = lit
                    break
            if failed:
                self._backtrack(0)
                return SolverResult(
                    False, assumption_failed=True, stats=dict(self.stats)
                )
            if branch is None:
                branch = self._pick_branch()
                if branch is None:
                    model = {
                        var: bool(self._assign[var])
                        for var in range(1, self._nvars + 1)
                    }
                    self._backtrack(0)
                    return SolverResult(True, model=model, stats=dict(self.stats))
                self.stats["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(branch, None)


def solve_cnf(cnf: Cnf, assumptions: Sequence[int] = ()) -> SolverResult:
    """One-shot convenience: build a solver for ``cnf`` and solve."""
    return CdclSolver(cnf).solve(assumptions)
