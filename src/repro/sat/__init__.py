"""SAT subsystem: CNF encoding, a CDCL solver, and miter-based equivalence.

This package gives the repository its *oracle-guided* half of the threat
model.  The ALMOST paper defends against oracle-less ML attacks; the classic
contrast is the SAT attack, which needs exactly the machinery built here:

* :mod:`repro.sat.cnf` — Tseitin encoding of :class:`~repro.aig.aig.Aig`
  and :class:`~repro.netlist.netlist.Netlist` circuits into a :class:`Cnf`
  container with named variable maps, plus DIMACS import/export;
* :mod:`repro.sat.solver` — a pure-Python CDCL solver (two-watched-literal
  propagation, first-UIP learning, VSIDS decay, restarts, incremental
  solving under assumptions);
* :mod:`repro.sat.miter` — miter construction between two circuits and the
  :func:`check_equivalence` API, the exact counterpart of the randomized
  :func:`repro.aig.simulate.functionally_equal` check.

The oracle-guided key-recovery attack built on top of this lives with the
other attacks in :mod:`repro.attacks.sat_attack`.
"""

from repro.sat.cnf import (
    CircuitCnf,
    Cnf,
    cnf_from_dimacs,
    tseitin_aig,
    tseitin_netlist,
)
from repro.sat.solver import CdclSolver, SolverResult, solve_cnf
from repro.sat.miter import EquivalenceResult, build_miter, check_equivalence

__all__ = [
    "CircuitCnf",
    "Cnf",
    "cnf_from_dimacs",
    "tseitin_aig",
    "tseitin_netlist",
    "CdclSolver",
    "SolverResult",
    "solve_cnf",
    "EquivalenceResult",
    "build_miter",
    "check_equivalence",
]
