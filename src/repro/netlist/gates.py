"""Primitive gate types and their boolean semantics."""

from __future__ import annotations

from enum import Enum
from typing import Optional, Sequence

import numpy as np


class GateType(str, Enum):
    """Primitive gate kinds understood by the netlist and ``.bench`` I/O.

    Multi-input associative gates (AND/OR/NAND/NOR/XOR/XNOR) accept two or
    more fanins, matching ISCAS ``.bench`` semantics.
    """

    BUF = "BUF"
    NOT = "NOT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    MUX = "MUX"  # MUX(sel, a, b) = b if sel else a


# Fixed arity where applicable; ``None`` means 2-or-more inputs.
GATE_ARITY: dict[GateType, Optional[int]] = {
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND: None,
    GateType.NAND: None,
    GateType.OR: None,
    GateType.NOR: None,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.MUX: 3,
}


def check_arity(gate_type: GateType, num_inputs: int) -> bool:
    """True when ``num_inputs`` is a legal fanin count for ``gate_type``."""
    arity = GATE_ARITY[gate_type]
    if arity is None:
        return num_inputs >= 2
    return num_inputs == arity


def gate_function(gate_type: GateType, inputs: Sequence[np.ndarray]) -> np.ndarray:
    """Evaluate a gate bit-parallel on uint64 (or bool) numpy words.

    ``inputs`` holds one array per fanin; all arrays share a shape.  The
    result has the same shape.  Works for both packed-word simulation
    (uint64) and plain boolean vectors because it only uses bitwise ops.
    """
    if gate_type is GateType.CONST0:
        raise ValueError("CONST0 takes no inputs; handle it in the simulator")
    if gate_type is GateType.CONST1:
        raise ValueError("CONST1 takes no inputs; handle it in the simulator")
    if gate_type is GateType.BUF:
        return inputs[0].copy()
    if gate_type is GateType.NOT:
        return ~inputs[0]
    if gate_type is GateType.MUX:
        sel, a, b = inputs
        return (sel & b) | (~sel & a)
    acc = inputs[0].copy()
    if gate_type in (GateType.AND, GateType.NAND):
        for arr in inputs[1:]:
            acc &= arr
    elif gate_type in (GateType.OR, GateType.NOR):
        for arr in inputs[1:]:
            acc |= arr
    elif gate_type in (GateType.XOR, GateType.XNOR):
        for arr in inputs[1:]:
            acc ^= arr
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown gate type {gate_type}")
    if gate_type in (GateType.NAND, GateType.NOR, GateType.XNOR):
        acc = ~acc
    return acc
