"""Read and write ISCAS-style ``.bench`` netlist files.

The ``.bench`` dialect accepted here is the classic ISCAS85 one::

    # comment
    INPUT(G1)
    OUTPUT(G22)
    G10 = NAND(G1, G3)
    G22 = NOT(G10)

plus ``AND/OR/NOR/XOR/XNOR/BUF/BUFF/NOT/MUX/CONST0/CONST1`` gates.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Union

from repro.errors import BenchParseError
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

_LINE_RE = re.compile(
    r"^\s*(?:"
    r"(?P<io>INPUT|OUTPUT)\s*\(\s*(?P<io_net>[^\s()]+)\s*\)"
    r"|(?P<out>[^\s=]+)\s*=\s*(?P<type>[A-Za-z01]+)\s*\(\s*(?P<ins>[^()]*)\)"
    r")\s*$"
)

_TYPE_ALIASES = {
    "BUFF": GateType.BUF,
    "BUF": GateType.BUF,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "MUX": GateType.MUX,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` text into a validated :class:`Netlist`."""
    netlist = Netlist(name=name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise BenchParseError(f"{name}:{lineno}: cannot parse {raw!r}")
        if match.group("io"):
            net = match.group("io_net")
            if match.group("io") == "INPUT":
                netlist.add_input(net)
            else:
                netlist.add_output(net)
            continue
        type_name = match.group("type").upper()
        gate_type = _TYPE_ALIASES.get(type_name)
        if gate_type is None:
            raise BenchParseError(
                f"{name}:{lineno}: unknown gate type {type_name!r}"
            )
        ins_text = match.group("ins").strip()
        fanins = tuple(s.strip() for s in ins_text.split(",")) if ins_text else ()
        fanins = tuple(f for f in fanins if f)
        netlist.add_gate(match.group("out"), gate_type, fanins)
    try:
        netlist.validate()
    except Exception as exc:
        raise BenchParseError(f"{name}: invalid netlist: {exc}") from exc
    return netlist


def load_bench(path: Union[str, Path]) -> Netlist:
    """Load a ``.bench`` file from disk."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(netlist: Netlist) -> str:
    """Serialize a netlist to ``.bench`` text (round-trips with parse)."""
    lines = [f"# {netlist.name}"]
    lines.extend(f"INPUT({net})" for net in netlist.inputs)
    lines.extend(f"OUTPUT({net})" for net in netlist.outputs)
    for gate in netlist.gates:
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.gate_type.value}({args})")
    return "\n".join(lines) + "\n"


def save_bench(netlist: Netlist, path: Union[str, Path]) -> None:
    """Write a netlist to a ``.bench`` file."""
    Path(path).write_text(write_bench(netlist))
