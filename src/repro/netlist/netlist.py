"""The :class:`Netlist` container: named nets, primitive gates, topo order."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.errors import NetlistError
from repro.netlist.gates import GateType, check_arity

KEY_INPUT_PREFIX = "keyinput"


@dataclass
class Gate:
    """One gate instance: drives net ``output`` from nets ``inputs``."""

    output: str
    gate_type: GateType
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        if not check_arity(self.gate_type, len(self.inputs)):
            raise NetlistError(
                f"gate {self.output}: {self.gate_type.value} cannot take "
                f"{len(self.inputs)} inputs"
            )


@dataclass
class Netlist:
    """A combinational gate-level netlist with named nets.

    Invariants enforced by :meth:`validate`:

    * every net is driven exactly once (by a PI or a gate output),
    * every gate input references a driven net,
    * the gate graph is acyclic.

    Primary inputs whose name starts with ``keyinput`` are *key inputs*
    introduced by logic locking; :attr:`key_inputs` lists them in key-bit
    order.
    """

    name: str
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    gates: list[Gate] = field(default_factory=list)

    # -- construction --------------------------------------------------------

    def add_input(self, net: str) -> str:
        if net in self.inputs:
            raise NetlistError(f"duplicate primary input {net!r}")
        self.inputs.append(net)
        return net

    def add_output(self, net: str) -> str:
        self.outputs.append(net)
        return net

    def add_gate(self, output: str, gate_type: GateType, inputs: Iterable[str]) -> str:
        self.gates.append(Gate(output, gate_type, tuple(inputs)))
        return output

    # -- views ----------------------------------------------------------------

    @property
    def key_inputs(self) -> list[str]:
        """Key inputs in key-bit order (``keyinput0``, ``keyinput1``, ...)."""
        keys = [n for n in self.inputs if n.startswith(KEY_INPUT_PREFIX)]
        return sorted(keys, key=lambda n: int(n[len(KEY_INPUT_PREFIX):]))

    @property
    def functional_inputs(self) -> list[str]:
        """Primary inputs that are not key inputs, in declaration order."""
        return [n for n in self.inputs if not n.startswith(KEY_INPUT_PREFIX)]

    def driver_map(self) -> dict[str, Gate]:
        """Map each gate-driven net to its driving gate."""
        drivers: dict[str, Gate] = {}
        for gate in self.gates:
            if gate.output in drivers:
                raise NetlistError(f"net {gate.output!r} driven twice")
            drivers[gate.output] = gate
        return drivers

    def fanout_map(self) -> dict[str, list[Gate]]:
        """Map each net to the gates that read it."""
        fanouts: dict[str, list[Gate]] = {net: [] for net in self.all_nets()}
        for gate in self.gates:
            for net in gate.inputs:
                fanouts.setdefault(net, []).append(gate)
        return fanouts

    def all_nets(self) -> list[str]:
        """All nets, inputs first then gate outputs in declaration order."""
        seen = list(self.inputs)
        seen_set = set(seen)
        for gate in self.gates:
            if gate.output not in seen_set:
                seen.append(gate.output)
                seen_set.add(gate.output)
        return seen

    def num_gates(self) -> int:
        return len(self.gates)

    def stats(self) -> dict[str, int]:
        """Gate counts by type plus totals, for synthesis-report features."""
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.gate_type.value] = counts.get(gate.gate_type.value, 0) + 1
        counts["total_gates"] = len(self.gates)
        counts["inputs"] = len(self.inputs)
        counts["outputs"] = len(self.outputs)
        counts["levels"] = self.depth()
        return counts

    # -- structure ------------------------------------------------------------

    def topological_gates(self) -> list[Gate]:
        """Gates in topological order (fanins before fanouts).

        Raises :class:`NetlistError` on combinational cycles or undriven nets.
        """
        drivers = self.driver_map()
        order: list[Gate] = []
        state: dict[str, int] = {}  # 0 = visiting, 1 = done
        for net in self.inputs:
            state[net] = 1

        for root in list(drivers):
            if state.get(root) == 1:
                continue
            stack: list[tuple[str, int]] = [(root, 0)]
            while stack:
                net, child_index = stack.pop()
                if state.get(net) == 1:
                    continue
                gate = drivers.get(net)
                if gate is None:
                    raise NetlistError(f"net {net!r} has no driver")
                if child_index == 0:
                    if state.get(net) == 0:
                        raise NetlistError(f"combinational cycle through {net!r}")
                    state[net] = 0
                advanced = False
                for i in range(child_index, len(gate.inputs)):
                    child = gate.inputs[i]
                    if state.get(child) != 1:
                        if state.get(child) == 0:
                            raise NetlistError(
                                f"combinational cycle through {child!r}"
                            )
                        stack.append((net, i + 1))
                        stack.append((child, 0))
                        advanced = True
                        break
                if not advanced:
                    state[net] = 1
                    order.append(gate)
        return order

    def depth(self) -> int:
        """Logic depth in gate levels (PIs are level 0)."""
        level: dict[str, int] = {net: 0 for net in self.inputs}
        depth = 0
        for gate in self.topological_gates():
            lvl = 1 + max((level[i] for i in gate.inputs), default=0)
            level[gate.output] = lvl
            depth = max(depth, lvl)
        return depth

    def validate(self) -> None:
        """Check netlist invariants; raises :class:`NetlistError` on failure."""
        drivers = self.driver_map()
        for net in self.inputs:
            if net in drivers:
                raise NetlistError(f"primary input {net!r} also driven by a gate")
        driven = set(self.inputs) | set(drivers)
        for gate in self.gates:
            for net in gate.inputs:
                if net not in driven:
                    raise NetlistError(
                        f"gate {gate.output!r} reads undriven net {net!r}"
                    )
        for net in self.outputs:
            if net not in driven:
                raise NetlistError(f"primary output {net!r} is undriven")
        self.topological_gates()  # raises on cycles

    def copy(self) -> "Netlist":
        return Netlist(
            name=self.name,
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            gates=[Gate(g.output, g.gate_type, g.inputs) for g in self.gates],
        )

    def fresh_net_namer(self, prefix: str = "n") -> Iterator[str]:
        """Yield net names not colliding with existing ones."""
        taken = set(self.all_nets()) | set(self.outputs)
        counter = 0
        while True:
            candidate = f"{prefix}{counter}"
            counter += 1
            if candidate not in taken:
                taken.add(candidate)
                yield candidate

    def rename(self, name: Optional[str] = None) -> "Netlist":
        out = self.copy()
        if name is not None:
            out.name = name
        return out
