"""Structural Verilog export for netlists and mapped circuits.

Emits the flat gate-level style that EDA flows exchange:
primitive netlists use Verilog primitive gates (``and``, ``nand``, ...);
mapped circuits instantiate library cells positionally, matching how a
NanGate45 netlist out of a commercial tool looks.
"""

from __future__ import annotations

import re

from repro.errors import NetlistError
from repro.mapping.mapper import MappedCircuit
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

_PRIMITIVES = {
    GateType.AND: "and",
    GateType.NAND: "nand",
    GateType.OR: "or",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
    GateType.NOT: "not",
    GateType.BUF: "buf",
}

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _escape(net: str) -> str:
    """Verilog identifier, escaping anything non-standard."""
    if _ID_RE.match(net):
        return net
    return f"\\{net} "


def netlist_to_verilog(netlist: Netlist) -> str:
    """Flat structural Verilog using primitive gates."""
    ports = [_escape(n) for n in netlist.inputs + netlist.outputs]
    lines = [f"module {_escape(netlist.name)} ({', '.join(ports)});"]
    for net in netlist.inputs:
        lines.append(f"  input {_escape(net)};")
    for net in netlist.outputs:
        lines.append(f"  output {_escape(net)};")
    declared = set(netlist.inputs) | set(netlist.outputs)
    for gate in netlist.gates:
        if gate.output not in declared:
            lines.append(f"  wire {_escape(gate.output)};")
            declared.add(gate.output)
    for index, gate in enumerate(netlist.gates):
        out = _escape(gate.output)
        ins = ", ".join(_escape(n) for n in gate.inputs)
        if gate.gate_type in _PRIMITIVES:
            primitive = _PRIMITIVES[gate.gate_type]
            lines.append(f"  {primitive} g{index} ({out}, {ins});")
        elif gate.gate_type is GateType.CONST0:
            lines.append(f"  assign {out} = 1'b0;")
        elif gate.gate_type is GateType.CONST1:
            lines.append(f"  assign {out} = 1'b1;")
        elif gate.gate_type is GateType.MUX:
            s, a, b = (_escape(n) for n in gate.inputs)
            lines.append(f"  assign {out} = {s} ? {b} : {a};")
        else:  # pragma: no cover - enum is closed
            raise NetlistError(f"cannot export {gate.gate_type}")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def mapped_to_verilog(mapped: MappedCircuit) -> str:
    """Structural Verilog instantiating library cells positionally."""
    ports = [_escape(n) for n in mapped.inputs + mapped.outputs]
    lines = [f"module {_escape(mapped.name)} ({', '.join(ports)});"]
    for net in mapped.inputs:
        lines.append(f"  input {_escape(net)};")
    for net in mapped.outputs:
        lines.append(f"  output {_escape(net)};")
    declared = set(mapped.inputs) | set(mapped.outputs)
    for inst in mapped.instances:
        if inst.output not in declared:
            lines.append(f"  wire {_escape(inst.output)};")
            declared.add(inst.output)
    for index, inst in enumerate(mapped.instances):
        pins = ", ".join(
            [_escape(inst.output)] + [_escape(n) for n in inst.inputs]
        )
        lines.append(f"  {inst.cell_name} u{index} ({pins});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
