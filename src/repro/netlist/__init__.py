"""Gate-level netlist representation, ``.bench`` I/O and simulation.

This is the interchange format of the library: benchmark circuits are built as
netlists, converted to AIGs for synthesis (:mod:`repro.aig`), and mapped back
to cell-level netlists for PPA analysis and attack featurization
(:mod:`repro.mapping`).
"""

from repro.netlist.gates import GATE_ARITY, GateType, gate_function
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.bench_io import parse_bench, write_bench
from repro.netlist.simulate import simulate, simulate_patterns

__all__ = [
    "GATE_ARITY",
    "GateType",
    "gate_function",
    "Gate",
    "Netlist",
    "parse_bench",
    "write_bench",
    "simulate",
    "simulate_patterns",
]
