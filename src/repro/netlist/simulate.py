"""Bit-parallel netlist simulation.

Simulation packs 64 test patterns into each uint64 word, so a single pass over
the gates evaluates 64 input vectors.  This is the engine behind functional
equivalence checks, switching-activity estimation for power, and stuck-at
fault simulation in the redundancy attack.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import NetlistError
from repro.netlist.gates import GateType, gate_function
from repro.netlist.netlist import Netlist
from repro.utils.rng import make_rng


def simulate(
    netlist: Netlist, input_words: Mapping[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Simulate with packed uint64 words per primary input.

    ``input_words`` maps every primary input to an equal-length uint64 array.
    Returns values for *all* nets (inputs, internal, outputs).
    """
    if not netlist.inputs and not netlist.gates:
        return {}
    words: dict[str, np.ndarray] = {}
    nwords: Optional[int] = None
    for net in netlist.inputs:
        if net not in input_words:
            raise NetlistError(f"missing stimulus for primary input {net!r}")
        arr = np.asarray(input_words[net], dtype=np.uint64)
        if nwords is None:
            nwords = arr.shape[0]
        elif arr.shape[0] != nwords:
            raise NetlistError("stimulus arrays have mismatched lengths")
        words[net] = arr
    if nwords is None:
        nwords = 1
    all_ones = np.full(nwords, np.uint64(0xFFFFFFFFFFFFFFFF))
    for gate in netlist.topological_gates():
        if gate.gate_type is GateType.CONST0:
            words[gate.output] = np.zeros(nwords, dtype=np.uint64)
        elif gate.gate_type is GateType.CONST1:
            words[gate.output] = all_ones.copy()
        else:
            fanins = [words[i] for i in gate.inputs]
            words[gate.output] = gate_function(gate.gate_type, fanins)
    return words


def simulate_patterns(
    netlist: Netlist, patterns: np.ndarray, input_order: Optional[Sequence[str]] = None
) -> np.ndarray:
    """Simulate explicit 0/1 patterns; returns outputs as a 0/1 matrix.

    ``patterns`` is shaped ``(num_patterns, num_inputs)`` with columns in
    ``input_order`` (default: the netlist's input declaration order).  The
    result is ``(num_patterns, num_outputs)`` in output declaration order.
    """
    order = list(input_order) if input_order is not None else list(netlist.inputs)
    patterns = np.asarray(patterns, dtype=np.uint8)
    if patterns.ndim != 2 or patterns.shape[1] != len(order):
        raise NetlistError(
            f"patterns must be (N, {len(order)}), got {patterns.shape}"
        )
    num = patterns.shape[0]
    nwords = (num + 63) // 64
    packed: dict[str, np.ndarray] = {}
    for col, net in enumerate(order):
        bits = np.zeros(nwords, dtype=np.uint64)
        ones = np.nonzero(patterns[:, col])[0]
        np.bitwise_or.at(
            bits, ones // 64, np.uint64(1) << (ones % 64).astype(np.uint64)
        )
        packed[net] = bits
    words = simulate(netlist, packed)
    out = np.zeros((num, len(netlist.outputs)), dtype=np.uint8)
    idx = np.arange(num)
    for col, net in enumerate(netlist.outputs):
        out[:, col] = (words[net][idx // 64] >> (idx % 64).astype(np.uint64)) & 1
    return out


def random_patterns(
    num_inputs: int, num_patterns: int, seed: int
) -> np.ndarray:
    """Uniform random 0/1 pattern matrix ``(num_patterns, num_inputs)``."""
    rng = make_rng(seed)
    return rng.integers(0, 2, size=(num_patterns, num_inputs), dtype=np.uint8)


def exhaustive_patterns(num_inputs: int) -> np.ndarray:
    """All ``2**num_inputs`` patterns; guard against blow-up at call sites."""
    if num_inputs > 20:
        raise NetlistError("exhaustive simulation limited to 20 inputs")
    count = 1 << num_inputs
    minterms = np.arange(count, dtype=np.uint64)
    cols = [(minterms >> np.uint64(i)) & np.uint64(1) for i in range(num_inputs)]
    return np.stack(cols, axis=1).astype(np.uint8) if num_inputs else np.zeros(
        (1, 0), dtype=np.uint8
    )


def signal_probabilities(
    netlist: Netlist, num_patterns: int = 2048, seed: int = 0
) -> dict[str, float]:
    """Per-net probability of being 1 under uniform random stimulus.

    One packed simulation pass; ones are counted with a vectorised
    popcount rather than per-word Python bit twiddling.  Feeds both
    switching-activity power estimates and the functional feature column
    the GNN attacks attach to each gate.
    """
    patterns = random_patterns(len(netlist.inputs), num_patterns, seed)
    nwords = (num_patterns + 63) // 64
    packed: dict[str, np.ndarray] = {}
    for col, net in enumerate(netlist.inputs):
        bits = np.zeros(nwords, dtype=np.uint64)
        ones = np.nonzero(patterns[:, col])[0]
        np.bitwise_or.at(
            bits, ones // 64, np.uint64(1) << (ones % 64).astype(np.uint64)
        )
        packed[net] = bits
    words = simulate(netlist, packed)
    tail = num_patterns % 64
    probs: dict[str, float] = {}
    for net, arr in words.items():
        if tail:
            # Mask away unused bits of the final word before counting.
            arr = arr.copy()
            arr[-1] &= np.uint64((1 << tail) - 1)
        ones = int(np.bitwise_count(arr).sum())
        probs[net] = ones / num_patterns
    return probs


def switching_activity(
    netlist: Netlist, num_patterns: int = 2048, seed: int = 0
) -> dict[str, float]:
    """Per-net toggle probability under random stimulus (for power estimates).

    The activity of a net is ``2 * p * (1 - p)`` where ``p`` is its
    signal probability — the expected toggle rate between two independent
    random cycles.
    """
    return {
        net: 2.0 * prob * (1.0 - prob)
        for net, prob in signal_probabilities(
            netlist, num_patterns=num_patterns, seed=seed
        ).items()
    }
