"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations that
produced it; :meth:`Tensor.backward` walks the tape in reverse topological
order accumulating gradients.  Only the operations the GNN/MLP models need
are implemented, each with an exact vector-Jacobian product.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import MLError


class Tensor:
    """A differentiable array node in the computation tape."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._parents = tuple(parents)
        self._backward = backward

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self) -> None:
        """Backpropagate from this (scalar) tensor."""
        if self.data.size != 1:
            raise MLError("backward() requires a scalar loss tensor")
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        self.grad = np.ones_like(self.data)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- operations -----------------------------------------------------------

    def __add__(self, other: "Tensor") -> "Tensor":
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor(
            out_data,
            requires_grad=self.requires_grad or other.requires_grad,
            parents=(self, other),
            backward=backward,
        )

    def __mul__(self, other: "Tensor") -> "Tensor":
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor(
            out_data,
            requires_grad=self.requires_grad or other.requires_grad,
            parents=(self, other),
            backward=backward,
        )

    def scale(self, factor: float) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * factor)

        return Tensor(
            self.data * factor,
            requires_grad=self.requires_grad,
            parents=(self,),
            backward=backward,
        )

    def matmul(self, other: "Tensor") -> "Tensor":
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor(
            out_data,
            requires_grad=self.requires_grad or other.requires_grad,
            parents=(self, other),
            backward=backward,
        )

    def relu(self) -> "Tensor":
        mask = self.data > 0.0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor(
            self.data * mask,
            requires_grad=self.requires_grad,
            parents=(self,),
            backward=backward,
        )

    def sum(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.full_like(self.data, float(grad)))

        return Tensor(
            self.data.sum(),
            requires_grad=self.requires_grad,
            parents=(self,),
            backward=backward,
        )

    def concat(self, other: "Tensor") -> "Tensor":
        """Concatenate along the last axis."""
        out_data = np.concatenate([self.data, other.data], axis=-1)
        split = self.data.shape[-1]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[..., :split])
            if other.requires_grad:
                other._accumulate(grad[..., split:])

        return Tensor(
            out_data,
            requires_grad=self.requires_grad or other.requires_grad,
            parents=(self, other),
            backward=backward,
        )


def spmm(matrix: sp.spmatrix, tensor: Tensor) -> Tensor:
    """Sparse-matrix (constant) times dense differentiable matrix."""
    csr = matrix.tocsr()
    out_data = csr @ tensor.data

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            tensor._accumulate(csr.T @ grad)

    return Tensor(
        out_data,
        requires_grad=tensor.requires_grad,
        parents=(tensor,),
        backward=backward,
    )


def segment_sum(tensor: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``tensor`` by segment (graph-level readout pooling)."""
    ids = np.asarray(segment_ids, dtype=np.int64)
    out_data = np.zeros((num_segments, tensor.data.shape[1]))
    np.add.at(out_data, ids, tensor.data)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            tensor._accumulate(grad[ids])

    return Tensor(
        out_data,
        requires_grad=tensor.requires_grad,
        parents=(tensor,),
        backward=backward,
    )


def log_softmax(tensor: Tensor) -> Tensor:
    """Row-wise log-softmax with the standard stable formulation."""
    shifted = tensor.data - tensor.data.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    out_data = shifted - log_z
    softmax = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            tensor._accumulate(
                grad - softmax * grad.sum(axis=-1, keepdims=True)
            )

    return Tensor(
        out_data,
        requires_grad=tensor.requires_grad,
        parents=(tensor,),
        backward=backward,
    )


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``labels`` under ``logits``."""
    labels = np.asarray(labels, dtype=np.int64)
    if logits.data.ndim != 2 or labels.shape[0] != logits.data.shape[0]:
        raise MLError("cross_entropy expects (N, C) logits and (N,) labels")
    log_probs = log_softmax(logits)
    count = labels.shape[0]
    picked_data = log_probs.data[np.arange(count), labels]

    def backward(grad: np.ndarray) -> None:
        if log_probs.requires_grad:
            full = np.zeros_like(log_probs.data)
            full[np.arange(count), labels] = -float(grad) / count
            log_probs._accumulate(full)

    return Tensor(
        -picked_data.mean(),
        requires_grad=logits.requires_grad,
        parents=(log_probs,),
        backward=backward,
    )


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce a broadcast gradient back to ``shape``."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad
