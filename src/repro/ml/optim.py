"""Optimizers (Adam, SGD) over autograd tensors."""

from __future__ import annotations

import numpy as np

from repro.ml.autograd import Tensor


class Adam:
    """Standard Adam with bias correction."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._step = 0

    def step(self) -> None:
        self._step += 1
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = (
                self.beta2 * self._v[index] + (1 - self.beta2) * grad * grad
            )
            m_hat = self._m[index] / (1 - self.beta1**self._step)
            v_hat = self._v[index] / (1 - self.beta2**self._step)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class Sgd:
    """Plain SGD with optional momentum (used in ablation tests)."""

    def __init__(
        self, parameters: list[Tensor], lr: float = 1e-2, momentum: float = 0.0
    ):
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            self._velocity[index] = (
                self.momentum * self._velocity[index] - self.lr * param.grad
            )
            param.data = param.data + self._velocity[index]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()
