"""Graph Isomorphism Network for subgraph classification (OMLA's model).

The architecture mirrors OMLA: ``L`` GIN layers with sum aggregation
(``h' = MLP((1 + eps) h + sum_neighbours h)``), a graph-level sum readout
after every layer (jumping knowledge), concatenation of the per-layer
readouts, and a final linear classifier to two classes (key bit 0 / 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.autograd import Tensor, segment_sum, spmm
from repro.ml.data import GraphBatch
from repro.ml.layers import Linear, Mlp, Module


class GinLayer(Module):
    """One GIN convolution with a learnable epsilon."""

    def __init__(self, in_features: int, hidden: int, out_features: int, seed: int):
        self.mlp = Mlp(in_features, hidden, out_features, seed=seed)
        self.eps = Tensor(np.zeros(1), requires_grad=True)

    def __call__(self, features: Tensor, batch: GraphBatch) -> Tensor:
        aggregated = spmm(batch.adjacency, features)
        one = Tensor(np.ones(1))
        scaled_self = features * (one + self.eps)
        return self.mlp(scaled_self + aggregated).relu()


class GinClassifier(Module):
    """GIN + jumping-knowledge readout + linear head (binary output)."""

    def __init__(
        self,
        in_features: int,
        hidden: int = 32,
        num_layers: int = 3,
        num_classes: int = 2,
        seed: int = 0,
    ):
        self.layers = [
            GinLayer(
                in_features if i == 0 else hidden,
                hidden,
                hidden,
                seed=seed + 10 * i,
            )
            for i in range(num_layers)
        ]
        readout_width = in_features + hidden * num_layers
        self.head = Linear(readout_width, num_classes, seed=seed + 999)

    def __call__(self, batch: GraphBatch) -> Tensor:
        features = Tensor(batch.features)
        readout = segment_sum(features, batch.graph_ids, batch.num_graphs)
        hidden = features
        for layer in self.layers:
            hidden = layer(hidden, batch)
            readout = readout.concat(
                segment_sum(hidden, batch.graph_ids, batch.num_graphs)
            )
        return self.head(readout)

    def predict(self, batch: GraphBatch) -> np.ndarray:
        """Hard 0/1 predictions (no gradient tracking needed)."""
        logits = self(batch)
        return logits.data.argmax(axis=-1)

    def predict_proba(self, batch: GraphBatch) -> np.ndarray:
        logits = self(batch).data
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def predict_grouped(
        self, batch: GraphBatch, slices: Sequence[slice]
    ) -> list[np.ndarray]:
        """One forward over a multi-candidate batch, split back per group.

        ``batch``/``slices`` come from
        :func:`repro.ml.data.pack_graph_groups`: all candidates' localities
        share one block-diagonal adjacency, so the whole candidate batch
        costs a single set of sparse matmuls instead of one forward per
        candidate.
        """
        predictions = self.predict(batch)
        return [predictions[s] for s in slices]
