"""Parameterized layers: Linear and MLP with He initialization."""

from __future__ import annotations

import numpy as np

from repro.ml.autograd import Tensor
from repro.utils.rng import make_rng


class Module:
    """Base class: parameter collection and train/eval bookkeeping."""

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> list[np.ndarray]:
        return [param.data.copy() for param in self.parameters()]

    def load_state_dict(self, state: list[np.ndarray]) -> None:
        params = self.parameters()
        if len(params) != len(state):
            raise ValueError("state size mismatch")
        for param, data in zip(params, state):
            param.data = data.copy()


class Linear(Module):
    """Affine layer ``y = x W + b`` with He-normal weight init."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0):
        rng = make_rng(seed)
        scale = np.sqrt(2.0 / in_features)
        self.weight = Tensor(
            rng.normal(0.0, scale, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def __call__(self, x: Tensor) -> Tensor:
        return x.matmul(self.weight) + self.bias


class Mlp(Module):
    """Two-layer perceptron with ReLU (the GIN update function)."""

    def __init__(self, in_features: int, hidden: int, out_features: int, seed: int = 0):
        self.first = Linear(in_features, hidden, seed=seed)
        self.second = Linear(hidden, out_features, seed=seed + 1)

    def __call__(self, x: Tensor) -> Tensor:
        return self.second(self.first(x).relu())
