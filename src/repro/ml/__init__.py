"""Minimal ML substrate: numpy reverse-mode autograd, MLP, GIN, Adam.

Stands in for the PyTorch stack OMLA uses.  The pieces are deliberately
small but real: gradients are exact (validated against numeric
differentiation in the test suite), batching packs many small subgraphs into
one block-diagonal sparse adjacency, and training supports validation-split
early stopping.
"""

from repro.ml.autograd import Tensor, cross_entropy
from repro.ml.layers import Linear, Mlp
from repro.ml.gnn import GinClassifier
from repro.ml.optim import Adam
from repro.ml.data import GraphData, GraphBatch, pack_graphs
from repro.ml.train import TrainConfig, TrainResult, train_classifier

__all__ = [
    "Tensor",
    "cross_entropy",
    "Linear",
    "Mlp",
    "GinClassifier",
    "Adam",
    "GraphData",
    "GraphBatch",
    "pack_graphs",
    "TrainConfig",
    "TrainResult",
    "train_classifier",
]
