"""Graph dataset containers and block-diagonal batching."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import MLError


@dataclass
class GraphData:
    """One labeled subgraph: node features + undirected edge list."""

    features: np.ndarray        # (num_nodes, num_features)
    edges: np.ndarray           # (num_edges, 2) int — undirected pairs
    label: int                  # key-bit value (0/1)
    meta: dict = None           # free-form provenance (circuit, key index...)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.edges = np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
        if self.features.ndim != 2:
            raise MLError("features must be (nodes, feature_dim)")
        if self.edges.size and self.edges.max() >= self.features.shape[0]:
            raise MLError("edge endpoint out of range")
        if self.meta is None:
            self.meta = {}

    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]


@dataclass
class GraphBatch:
    """Many graphs packed as one block-diagonal adjacency."""

    features: np.ndarray        # (total_nodes, num_features)
    adjacency: sp.csr_matrix    # (total_nodes, total_nodes), symmetric
    graph_ids: np.ndarray       # (total_nodes,) graph index per node
    labels: np.ndarray          # (num_graphs,)
    num_graphs: int


def pack_graphs(graphs: Sequence[GraphData]) -> GraphBatch:
    """Pack graphs into one batch (order preserved)."""
    if not graphs:
        raise MLError("cannot pack an empty graph list")
    feature_dim = graphs[0].features.shape[1]
    offsets = []
    total = 0
    for graph in graphs:
        if graph.features.shape[1] != feature_dim:
            raise MLError("inconsistent feature dimensions across graphs")
        offsets.append(total)
        total += graph.num_nodes
    features = np.vstack([g.features for g in graphs])
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for graph, offset in zip(graphs, offsets):
        if graph.edges.size == 0:
            continue
        u = graph.edges[:, 0] + offset
        v = graph.edges[:, 1] + offset
        rows.extend([u, v])
        cols.extend([v, u])
    if rows:
        row = np.concatenate(rows)
        col = np.concatenate(cols)
        data = np.ones(row.shape[0])
        adjacency = sp.csr_matrix((data, (row, col)), shape=(total, total))
        # Collapse duplicate edges to weight 1 (undirected simple graph).
        adjacency.data[:] = 1.0
    else:
        adjacency = sp.csr_matrix((total, total))
    graph_ids = np.concatenate(
        [np.full(g.num_nodes, i, dtype=np.int64) for i, g in enumerate(graphs)]
    )
    labels = np.array([g.label for g in graphs], dtype=np.int64)
    return GraphBatch(
        features=features,
        adjacency=adjacency,
        graph_ids=graph_ids,
        labels=labels,
        num_graphs=len(graphs),
    )


def pack_graph_groups(
    groups: Sequence[Sequence[GraphData]],
) -> tuple[GraphBatch, list[slice]]:
    """Pack several per-candidate graph groups into ONE batch.

    The recipe-search engine scores a whole batch of candidate netlists at
    once: every candidate's key-gate localities are flattened into a single
    block-diagonal :class:`GraphBatch` (one model forward for the lot), and
    the returned graph-index slices split the per-graph predictions back
    per candidate.
    """
    if not groups:
        raise MLError("cannot pack an empty group list")
    flat: list[GraphData] = []
    slices: list[slice] = []
    for group in groups:
        slices.append(slice(len(flat), len(flat) + len(group)))
        flat.extend(group)
    batch = pack_graphs(flat)
    return batch, slices
