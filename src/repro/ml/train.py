"""Training loop for graph classifiers, with validation-split tracking."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import MLError
from repro.ml.autograd import cross_entropy
from repro.ml.data import GraphData, pack_graphs
from repro.ml.gnn import GinClassifier
from repro.ml.optim import Adam
from repro.utils.rng import make_rng


@dataclass
class TrainConfig:
    """Hyper-parameters for :func:`train_classifier`."""

    epochs: int = 60
    batch_size: int = 64
    lr: float = 5e-3
    weight_decay: float = 1e-5
    val_fraction: float = 0.1   # the paper's 9:1 train/validation split
    seed: int = 0
    keep_best: bool = True      # restore the best-validation-accuracy weights


@dataclass
class TrainResult:
    """Loss/accuracy history of one training run."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    best_val_accuracy: float = 0.0


def evaluate_accuracy(model: GinClassifier, graphs: Sequence[GraphData]) -> float:
    """Fraction of graphs whose label the model predicts correctly."""
    if not graphs:
        raise MLError("cannot evaluate on an empty dataset")
    batch = pack_graphs(list(graphs))
    predictions = model.predict(batch)
    return float((predictions == batch.labels).mean())


def train_classifier(
    model: GinClassifier,
    graphs: Sequence[GraphData],
    config: Optional[TrainConfig] = None,
    epoch_callback: Optional[Callable[[int, "GinClassifier"], None]] = None,
    extra_graphs_provider: Optional[
        Callable[[int], Sequence[GraphData]]
    ] = None,
) -> TrainResult:
    """Train ``model`` on labeled subgraphs.

    ``epoch_callback(epoch, model)`` runs after every epoch (used by the
    adversarial re-training loop to inject SA-mined samples);
    ``extra_graphs_provider(epoch)`` may return new graphs to append to the
    training pool before the epoch runs (Algorithm 1's data augmentation).
    """
    config = config if config is not None else TrainConfig()
    rng = make_rng(config.seed)
    pool = list(graphs)
    if not pool:
        raise MLError("training requires at least one graph")
    perm = rng.permutation(len(pool))
    num_val = max(1, int(len(pool) * config.val_fraction)) if len(pool) > 4 else 0
    val_set = [pool[i] for i in perm[:num_val]]
    train_set = [pool[i] for i in perm[num_val:]]

    optimizer = Adam(
        model.parameters(), lr=config.lr, weight_decay=config.weight_decay
    )
    result = TrainResult()
    best_state = None
    for epoch in range(config.epochs):
        if extra_graphs_provider is not None:
            extra = list(extra_graphs_provider(epoch))
            if extra:
                train_set.extend(extra)
        order = rng.permutation(len(train_set))
        epoch_loss = 0.0
        correct = 0
        for start in range(0, len(train_set), config.batch_size):
            index_block = order[start: start + config.batch_size]
            batch = pack_graphs([train_set[i] for i in index_block])
            optimizer.zero_grad()
            logits = model(batch)
            loss = cross_entropy(logits, batch.labels)
            loss.backward()
            optimizer.step()
            epoch_loss += float(loss.data) * len(index_block)
            correct += int((logits.data.argmax(axis=-1) == batch.labels).sum())
        result.train_loss.append(epoch_loss / len(train_set))
        result.train_accuracy.append(correct / len(train_set))
        if val_set:
            val_acc = evaluate_accuracy(model, val_set)
            result.val_accuracy.append(val_acc)
            if config.keep_best and val_acc >= result.best_val_accuracy:
                result.best_val_accuracy = val_acc
                best_state = model.state_dict()
        if epoch_callback is not None:
            epoch_callback(epoch, model)
    if best_state is not None and config.keep_best:
        model.load_state_dict(best_state)
    if not val_set:
        result.best_val_accuracy = (
            result.train_accuracy[-1] if result.train_accuracy else 0.0
        )
    return result
