"""Experiment scaling: quick / standard / full parameter sets.

The paper's hyper-parameters (1000 training samples, 350 epochs, SA with 100
iterations, 7 circuits x 2 key sizes) are hours of compute in this pure
Python stack.  Benches resolve a :class:`Scale` from the ``REPRO_SCALE``
environment variable; EXPERIMENTS.md records which scale produced the
committed numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """One named parameter set for the benchmark harness."""

    name: str
    circuit_scale: str          # passed to load_iscas85
    benchmarks: tuple[str, ...]
    key_sizes: tuple[int, ...]
    proxy_samples: int
    proxy_epochs: int
    sa_iterations: int
    random_set_size: int        # recipes in Table I's "random set"
    adv_period: int
    adv_augment: int
    adv_rounds: int
    resynthesis_iterations: int


QUICK = Scale(
    name="quick",
    circuit_scale="quick",
    benchmarks=("c1355", "c1908", "c3540"),
    key_sizes=(16,),
    proxy_samples=96,
    proxy_epochs=30,
    sa_iterations=8,
    random_set_size=4,
    adv_period=10,
    adv_augment=24,
    adv_rounds=2,
    resynthesis_iterations=8,
)

STANDARD = Scale(
    name="standard",
    circuit_scale="quick",
    benchmarks=("c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552"),
    key_sizes=(32, 64),
    proxy_samples=160,
    proxy_epochs=40,
    sa_iterations=30,
    random_set_size=12,
    adv_period=10,
    adv_augment=40,
    adv_rounds=3,
    resynthesis_iterations=20,
)

FULL = Scale(
    name="full",
    circuit_scale="full",
    benchmarks=("c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552"),
    key_sizes=(64, 128),
    proxy_samples=1000,
    proxy_epochs=350,
    sa_iterations=100,
    random_set_size=1000,
    adv_period=50,
    adv_augment=200,
    adv_rounds=6,
    resynthesis_iterations=100,
)

_SCALES = {"quick": QUICK, "standard": STANDARD, "full": FULL}


def resolve_scale(default: str = "quick") -> Scale:
    """The active scale, from ``REPRO_SCALE`` (quick | standard | full)."""
    name = os.environ.get("REPRO_SCALE", default).lower()
    scale = _SCALES.get(name)
    if scale is None:
        raise ValueError(
            f"unknown REPRO_SCALE={name!r}; use quick, standard or full"
        )
    return scale
