"""Trace-file ingestion and rendering for ``repro trace``.

Reads the JSONL stream a :class:`repro.obs.trace.Tracer` writes (one
header line, then span/event records in *close* order), rebuilds the span
hierarchy from the ``span_id``/``parent_id`` links — including spans that
pool workers emitted from other processes — and renders two views:

* :func:`render_span_tree` — the indented run → cell → stage → solver
  hierarchy with wall-clock times and the counter deltas each span
  carried;
* :func:`render_trace_hotspots` — span names aggregated by *self time*
  (elapsed minus the elapsed of direct children), answering "where did
  this run actually spend its time".

Both degrade gracefully on partial files: orphaned spans (a parent lost
to a crashed worker) are promoted to roots rather than dropped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import ReproError
from repro.reporting.tables import render_table


def load_trace(path: Union[str, Path]) -> list[dict]:
    """Parse a trace JSONL file into its records (header excluded).

    Tolerates a truncated final line (a killed run mid-write); raises
    :class:`~repro.errors.ReproError` when the file has no parseable
    records at all.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise ReproError(f"cannot read trace file {path}: {exc}") from None
    records: list[dict] = []
    parsed_any = False
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail of an interrupted run
        parsed_any = True
        if isinstance(record, dict) and record.get("kind") != "header":
            records.append(record)
    if not parsed_any:
        raise ReproError(f"{path} contains no trace records")
    return records


def build_span_tree(records: Sequence[dict]) -> list[dict]:
    """Roots of the span forest; each node gains a ``children`` list.

    Children keep close order (the order the tracer emitted them), which
    matches execution order for sequential work.  A record whose parent is
    missing from the file — e.g. its process died before the parent span
    closed — becomes a root.
    """
    nodes = {r["span_id"]: dict(r, children=[]) for r in records}
    roots: list[dict] = []
    for record in records:
        node = nodes[record["span_id"]]
        parent = nodes.get(record.get("parent_id"))
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


def _span_label(node: dict) -> str:
    attrs = node.get("attrs") or {}
    detail = ", ".join(
        f"{key}={value}"
        for key, value in attrs.items()
        if key != "fingerprint"
    )
    fp = attrs.get("fingerprint")
    if fp:
        detail = f"{detail + ', ' if detail else ''}{str(fp)[:12]}"
    return f"{node['name']} [{detail}]" if detail else str(node["name"])


def _metrics_label(node: dict) -> str:
    metrics = node.get("metrics") or {}
    return " ".join(f"{k}={v}" for k, v in sorted(metrics.items()))


def render_span_tree(
    records: Sequence[dict], max_depth: Optional[int] = None
) -> str:
    """Indented span hierarchy with timings and per-span counter deltas."""
    roots = build_span_tree(records)
    if not roots:
        return "(empty trace: no spans recorded)"
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        indent = "  " * depth
        line = (
            f"{indent}{_span_label(node)}"
            f"  {float(node.get('elapsed_s', 0.0)):.3f}s"
        )
        metrics = _metrics_label(node)
        if metrics:
            line += f"  ({metrics})"
        lines.append(line)
        for child in node["children"]:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def hotspot_rows(records: Sequence[dict]) -> list[dict]:
    """Per-span-name totals ordered by aggregate *self time*.

    Self time is a span's elapsed minus its direct children's elapsed —
    the time the span itself burned, not what it delegated — so parent
    spans do not double-count their children in the ranking.
    """
    roots = build_span_tree(records)
    totals: dict[str, dict] = {}

    def walk(node: dict) -> None:
        child_elapsed = sum(
            float(child.get("elapsed_s", 0.0)) for child in node["children"]
        )
        self_s = max(0.0, float(node.get("elapsed_s", 0.0)) - child_elapsed)
        row = totals.setdefault(
            node["name"], {"name": node["name"], "count": 0,
                           "self_s": 0.0, "total_s": 0.0}
        )
        row["count"] += 1
        row["self_s"] += self_s
        row["total_s"] += float(node.get("elapsed_s", 0.0))
        for child in node["children"]:
            walk(child)

    for root in roots:
        walk(root)
    return sorted(totals.values(), key=lambda r: r["self_s"], reverse=True)


def render_trace_hotspots(
    records: Sequence[dict], top: int = 10
) -> str:
    """Top-``top`` span names by aggregate self time, as an ASCII table."""
    rows = hotspot_rows(records)
    if not rows:
        return "(empty trace: no spans recorded)"
    grand_self = sum(row["self_s"] for row in rows) or 1.0
    table_rows = [
        (
            row["name"],
            row["count"],
            row["self_s"],
            row["total_s"],
            100.0 * row["self_s"] / grand_self,
        )
        for row in rows[:top]
    ]
    return render_table(
        ["span", "count", "self s", "total s", "self %"],
        table_rows,
        title=f"Top hotspots ({len(rows)} span kinds, "
              f"{sum(r['count'] for r in rows)} spans)",
        float_format="{:.3f}",
    )
