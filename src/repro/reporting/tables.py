"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table (what the bench harness prints)."""
    formatted_rows = []
    for row in rows:
        formatted = []
        for value in row:
            if isinstance(value, float):
                formatted.append(float_format.format(value))
            else:
                formatted.append(str(value))
        formatted_rows.append(formatted)
    widths = [len(str(h)) for h in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        )

    parts = []
    if title:
        parts.append(title)
    parts.append(line([str(h) for h in headers]))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in formatted_rows)
    return "\n".join(parts)
