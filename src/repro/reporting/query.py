"""Query-complexity tables: the axis SAT-resilient defenses fight on.

Point-function defenses do not stop the oracle-guided attack from finding
*a* key — they make the number of oracle queries (DIPs) needed for an
exact key grow exponentially in the block width, while an approximate
attack (AppSAT) gets within a measured error rate in a handful of queries.
:func:`render_query_complexity_table` puts the two termination modes side
by side per scheme and key width: DIP count, total oracle queries, whether
the result is exact (miter proven UNSAT) or approximate (measured error),
and whether the DIP budget ran out first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.attacks.base import AttackResult
from repro.reporting.tables import render_table


@dataclass
class QueryComplexityRecord:
    """One DIP-loop attack run, reduced to its query-complexity numbers."""

    scheme: str
    attack: str
    key_size: int
    dips: int
    oracle_queries: int
    exact: bool
    error_rate: Optional[float]
    elapsed_s: float
    budget_exhausted: bool = False

    @staticmethod
    def _from_details(
        scheme: str,
        attack: str,
        key_size: int,
        details: dict,
        default_elapsed: float = 0.0,
    ) -> "QueryComplexityRecord":
        budget_exhausted = bool(details.get("budget_exhausted", False))
        return QueryComplexityRecord(
            scheme=scheme,
            attack=attack,
            key_size=key_size,
            dips=details.get("iterations", 0),
            oracle_queries=details.get(
                "oracle_queries", details.get("iterations", 0)
            ),
            exact=bool(details.get("exact", not budget_exhausted)),
            error_rate=details.get("error_rate"),
            elapsed_s=details.get("elapsed_s", default_elapsed),
            budget_exhausted=budget_exhausted,
        )

    @staticmethod
    def from_result(scheme: str, result: AttackResult) -> "QueryComplexityRecord":
        """Build a record from a DipLoop-based :class:`AttackResult`."""
        return QueryComplexityRecord._from_details(
            scheme, result.attack_name or "sat", result.key_size,
            result.details,
        )

    @staticmethod
    def from_cell(scheme: str, cell) -> "QueryComplexityRecord":
        """Build a record from a pipeline :class:`CellResult` grid cell."""
        return QueryComplexityRecord._from_details(
            scheme, cell.attack, cell.key_size,
            cell.details.get("attack", {}), default_elapsed=cell.elapsed_s,
        )


def render_query_complexity_table(
    records: Sequence[QueryComplexityRecord],
    title: str = "Query complexity: DIPs to key recovery",
) -> str:
    """ASCII table of DIP counts vs. key width, exact vs. approximate.

    The ``result`` column distinguishes the three termination modes:
    ``exact`` (provably equivalent key), ``~err=x%`` (approximate key with
    its measured error rate) and ``budget!`` (DIP budget exhausted before
    either — the defense won this cell).
    """
    headers = [
        "scheme",
        "attack",
        "key bits",
        "DIPs",
        "queries",
        "result",
        "time [s]",
    ]
    rows = []
    for record in records:
        if record.budget_exhausted:
            outcome = "budget!"
        elif record.exact:
            outcome = "exact"
        elif record.error_rate is not None:
            outcome = f"~err={100.0 * record.error_rate:.2f}%"
        else:
            outcome = "approx"
        rows.append(
            [
                record.scheme,
                record.attack,
                record.key_size,
                record.dips,
                record.oracle_queries,
                outcome,
                round(record.elapsed_s, 3),
            ]
        )
    return render_table(headers, rows, title=title)
