"""Job-table rendering for ``repro jobs`` (and the service docs).

Turns the summaries served by ``GET /jobs`` (or
:meth:`repro.service.jobs.JobRecord.summary`) into the repo's aligned
ASCII-table format.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional, Sequence

from repro.reporting.tables import render_table


def _age(now: float, t: float) -> str:
    seconds = max(0.0, now - t)
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.0f}m"
    if seconds < 86400:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def job_rows(
    summaries: Sequence[Mapping], now: Optional[float] = None
) -> list[list]:
    """Table rows (id, name, state, attempts, worker, stages, cells,
    age, error) from job summary dicts, acceptance order preserved."""
    now = time.time() if now is None else now
    rows = []
    for job in summaries:
        error = str(job.get("error", ""))
        if len(error) > 40:
            error = error[:37] + "..."
        rows.append(
            [
                job.get("id", ""),
                job.get("name", ""),
                job.get("state", ""),
                job.get("attempts", 0),
                job.get("worker", ""),
                job.get("stages", 0),
                job.get("cells", 0),
                _age(now, float(job.get("created_t", now))),
                error,
            ]
        )
    return rows


def render_job_table(
    summaries: Sequence[Mapping],
    title: Optional[str] = None,
    now: Optional[float] = None,
) -> str:
    """The ``repro jobs`` listing as an aligned ASCII table."""
    return render_table(
        ["job", "name", "state", "att", "worker", "stages", "cells",
         "age", "error"],
        job_rows(summaries, now=now),
        title=title,
    )
