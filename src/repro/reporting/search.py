"""Strategy-comparison tables for the recipe-search engine.

One row per search run: strategy, batch shape, outcome quality (best
energy / predicted accuracy) and throughput accounting (iterations vs.
energy evaluations, wall-clock, evals/sec, prefix-cache hit rate).  Used
by ``benchmarks/test_bench_search.py`` and the ``repro almost`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.reporting.tables import render_table


@dataclass
class SearchStrategyRecord:
    """One search run reduced to comparison-table numbers."""

    strategy: str
    chains: int
    jobs: int
    best_energy: float
    predicted_accuracy: Optional[float]
    iterations: int
    energy_evaluations: int
    elapsed_s: float
    cache_hit_rate: Optional[float] = None

    @property
    def evals_per_s(self) -> float:
        return (
            self.energy_evaluations / self.elapsed_s if self.elapsed_s else 0.0
        )

    @staticmethod
    def from_almost(
        result,
        elapsed_s: float,
        chains: int = 1,
        jobs: int = 1,
        cache_hit_rate: Optional[float] = None,
    ) -> "SearchStrategyRecord":
        """Build a record from an :class:`repro.core.almost.AlmostResult`."""
        return SearchStrategyRecord(
            strategy=result.strategy,
            chains=chains,
            jobs=jobs,
            best_energy=abs(result.predicted_accuracy - 0.5),
            predicted_accuracy=result.predicted_accuracy,
            iterations=result.iterations,
            energy_evaluations=result.energy_evaluations,
            elapsed_s=elapsed_s,
            cache_hit_rate=cache_hit_rate,
        )


def render_search_comparison_table(
    records: Sequence[SearchStrategyRecord],
    title: str = "Recipe-search strategy comparison",
) -> str:
    rows = []
    for record in records:
        rows.append(
            [
                record.strategy,
                record.chains,
                record.jobs,
                f"{record.best_energy:.4f}",
                (
                    f"{100 * record.predicted_accuracy:.2f}%"
                    if record.predicted_accuracy is not None
                    else "n/a"
                ),
                record.iterations,
                record.energy_evaluations,
                f"{record.elapsed_s:.2f}",
                f"{record.evals_per_s:.2f}",
                (
                    f"{100 * record.cache_hit_rate:.1f}%"
                    if record.cache_hit_rate is not None
                    else "n/a"
                ),
            ]
        )
    return render_table(
        [
            "strategy",
            "chains",
            "jobs",
            "best |acc-0.5|",
            "pred. acc",
            "iters",
            "evals",
            "wall s",
            "evals/s",
            "prefix-cache hits",
        ],
        rows,
        title=title,
    )
