"""Strategy-comparison tables for the recipe-search engine.

One row per search run: strategy, batch shape, outcome quality (best
energy / predicted accuracy) and throughput accounting (iterations vs.
energy evaluations, wall-clock, evals/sec, prefix-cache hit rate).  Used
by ``benchmarks/test_bench_search.py``, the ``repro almost`` CLI, and —
via :func:`records_from_run` and the ``search`` reporter — by strategy
sweeps: one spec with ``strategy = ["sa", "pt", "beam"]`` yields a
populated comparison table from a single ``repro grid``/``repro run``
invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.reporting.tables import render_table


def hit_rate_if_traffic(stats: Optional[dict]) -> Optional[float]:
    """The stats dict's prefix-cache hit rate, or ``None`` if the cache
    never saw traffic (so tables render ``n/a`` instead of a bogus 0%)."""
    stats = stats or {}
    if stats.get("steps_saved", 0) + stats.get("steps_executed", 0):
        return stats.get("hit_rate")
    return None


@dataclass
class SearchStrategyRecord:
    """One search run reduced to comparison-table numbers."""

    strategy: str
    chains: int
    jobs: int
    best_energy: float
    predicted_accuracy: Optional[float]
    iterations: int
    energy_evaluations: int
    elapsed_s: float
    cache_hit_rate: Optional[float] = None
    label: str = ""

    @property
    def evals_per_s(self) -> float:
        return (
            self.energy_evaluations / self.elapsed_s if self.elapsed_s else 0.0
        )

    @staticmethod
    def from_almost(
        result,
        elapsed_s: float,
        chains: int = 1,
        jobs: int = 1,
        cache_hit_rate: Optional[float] = None,
        label: str = "",
    ) -> "SearchStrategyRecord":
        """Build a record from an :class:`repro.core.almost.AlmostResult`."""
        if cache_hit_rate is None:
            cache_hit_rate = hit_rate_if_traffic(result.synth_cache)
        return SearchStrategyRecord(
            strategy=result.strategy,
            chains=chains,
            jobs=jobs,
            best_energy=abs(result.predicted_accuracy - 0.5),
            predicted_accuracy=result.predicted_accuracy,
            iterations=result.iterations,
            energy_evaluations=result.energy_evaluations,
            elapsed_s=elapsed_s,
            cache_hit_rate=cache_hit_rate,
            label=label,
        )

    @staticmethod
    def from_cell(
        cell, warmup_elapsed: Optional[dict] = None
    ) -> Optional["SearchStrategyRecord"]:
        """Build a record from a grid :class:`~repro.pipeline.runner.\
CellResult` whose defense stage ran a recipe search; ``None`` otherwise.

        The wall-clock is the cell's defense-stage time from the stage log
        (proxy training included).  When the cell only *hit* the cache —
        e.g. the parallel runner's prefix-warming pass executed the
        defense before the cells ran — ``warmup_elapsed`` (a fingerprint
        → seconds map from the warmup log) supplies the real execution
        time instead of the near-zero cache-read time.
        """
        info = (cell.details or {}).get("defense") or {}
        if "strategy" not in info or "predicted_accuracy" not in info:
            return None
        elapsed = 0.0
        for entry in cell.stages:
            if entry.get("stage") != "defense":
                continue
            elapsed = entry["elapsed_s"]
            if entry.get("cached") and warmup_elapsed:
                elapsed = warmup_elapsed.get(
                    entry.get("fingerprint"), elapsed
                )
            break
        hit_rate = hit_rate_if_traffic(info.get("synth_cache"))
        accuracy = info["predicted_accuracy"]
        return SearchStrategyRecord(
            strategy=info["strategy"],
            chains=info.get("chains", 1),
            jobs=info.get("jobs", 1),
            best_energy=abs(accuracy - 0.5),
            predicted_accuracy=accuracy,
            iterations=info.get("search_iterations", 0),
            energy_evaluations=info.get("energy_evaluations", 0),
            elapsed_s=elapsed,
            cache_hit_rate=hit_rate,
            label=cell.benchmark,
        )


def records_from_run(run) -> list[SearchStrategyRecord]:
    """Strategy-comparison records for a grid run, one per search.

    Attack cells of one benchmark share their (cached) defense stage, so
    records are deduplicated per (benchmark, strategy), first cell in run
    order winning.  Under the parallel runner that first cell may itself
    be a cache hit (the prefix-warming pass executed the search); the
    warmup log's timings are threaded through so the table still shows
    real execution wall-clock.
    """
    warmup_elapsed = {
        entry["fingerprint"]: entry["elapsed_s"]
        for entry in (getattr(run, "warmup", None) or [])
        if entry.get("stage") == "defense" and not entry.get("cached")
    }
    records: list[SearchStrategyRecord] = []
    seen: set[tuple[str, str]] = set()
    for cell in run.cells:
        record = SearchStrategyRecord.from_cell(cell, warmup_elapsed)
        if record is None:
            continue
        key = (cell.benchmark, record.strategy)
        if key in seen:
            continue
        seen.add(key)
        records.append(record)
    return records


def render_search_comparison_table(
    records: Sequence[SearchStrategyRecord],
    title: str = "Recipe-search strategy comparison",
) -> str:
    labelled = any(record.label for record in records)
    rows = []
    for record in records:
        row = [
            record.strategy,
            record.chains,
            record.jobs,
            f"{record.best_energy:.4f}",
            (
                f"{100 * record.predicted_accuracy:.2f}%"
                if record.predicted_accuracy is not None
                else "n/a"
            ),
            record.iterations,
            record.energy_evaluations,
            f"{record.elapsed_s:.2f}",
            f"{record.evals_per_s:.2f}",
            (
                f"{100 * record.cache_hit_rate:.1f}%"
                if record.cache_hit_rate is not None
                else "n/a"
            ),
        ]
        if labelled:
            row.insert(0, record.label)
        rows.append(row)
    headers = [
        "strategy",
        "chains",
        "jobs",
        "best |acc-0.5|",
        "pred. acc",
        "iters",
        "evals",
        "wall s",
        "evals/s",
        "prefix-cache hits",
    ]
    if labelled:
        headers.insert(0, "benchmark")
    return render_table(headers, rows, title=title)
