"""Reporting: paper reference numbers, ASCII tables, experiment scaling,
and pipeline :class:`RunResult` ingestion (:mod:`repro.reporting.run`)."""

from repro.reporting.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
)
from repro.reporting.tables import render_table
from repro.reporting.sat import SatAttackRecord, render_sat_attack_table
from repro.reporting.query import (
    QueryComplexityRecord,
    render_query_complexity_table,
)
from repro.reporting.scale import Scale, resolve_scale
from repro.reporting.run import render_run_table, run_result_rows
from repro.reporting.jobs import job_rows, render_job_table
from repro.reporting.search import (
    SearchStrategyRecord,
    records_from_run,
    render_search_comparison_table,
)
from repro.reporting.trace import (
    build_span_tree,
    hotspot_rows,
    load_trace,
    render_span_tree,
    render_trace_hotspots,
)

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "render_table",
    "SatAttackRecord",
    "render_sat_attack_table",
    "QueryComplexityRecord",
    "render_query_complexity_table",
    "Scale",
    "resolve_scale",
    "render_run_table",
    "run_result_rows",
    "job_rows",
    "render_job_table",
    "SearchStrategyRecord",
    "records_from_run",
    "render_search_comparison_table",
    "build_span_tree",
    "hotspot_rows",
    "load_trace",
    "render_span_tree",
    "render_trace_hotspots",
]
