"""Render pipeline :class:`~repro.pipeline.runner.RunResult` grids as tables.

The runner emits structured JSON; this module is the other half of the
contract — any saved ``RunResult`` (or one fresh from ``Runner.run``)
renders directly as the paper-style benchmark × attack accuracy table, with
cache-hit accounting so warm reruns are visible at a glance.
"""

from __future__ import annotations

from typing import Optional

from repro.reporting.tables import render_table


def run_result_rows(run) -> list[list[object]]:
    """Flatten a RunResult into table rows (one per grid cell)."""
    rows: list[list[object]] = []
    for cell in run.cells:
        accuracy = (
            f"{100.0 * cell.accuracy:.1f}"
            if cell.accuracy is not None
            else "n/a"
        )
        defense = cell.details.get("defense", {})
        attack = cell.attack or (
            f"(defense: {defense.get('defense')})" if defense else "(none)"
        )
        rows.append(
            [
                cell.benchmark,
                attack,
                cell.key_size,
                cell.recipe,
                accuracy,
                round(cell.elapsed_s, 3),
                f"{cell.cached_stages}/{len(cell.stages)}",
            ]
        )
    return rows


def render_run_table(run, title: Optional[str] = None) -> str:
    """ASCII table for a pipeline run (the ``table`` reporter)."""
    headers = [
        "benchmark",
        "attack",
        "key bits",
        "recipe",
        "acc [%]",
        "time [s]",
        "cached",
    ]
    if title is None:
        title = (
            f"{run.name}: {len(run.cells)} cells, "
            f"{run.executed_stages} stages executed / "
            f"{run.cached_stages} cached, {run.elapsed_s:.2f}s"
        )
    return render_table(headers, run_result_rows(run), title=title)
