"""Tabulating SAT-attack runs next to the oracle-less ML results.

The paper's tables report ML-attack *accuracy*; the SAT attack is measured
differently — it either terminates with a provably correct key or runs out
of budget, so the interesting numbers are DIP-iteration count, solver
effort and wall-clock time.  :func:`render_sat_attack_table` puts both
families side by side so a defense evaluation can show, e.g., "OMLA at 50%
but the SAT attack recovers the key in 9 DIPs" on the same circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.attacks.base import AttackResult
from repro.reporting.tables import render_table


@dataclass
class SatAttackRecord:
    """One SAT-attack run, reduced to its reportable numbers."""

    circuit: str
    key_size: int
    iterations: int
    conflicts: int
    decisions: int
    elapsed_s: float
    key_accuracy: Optional[float] = None  # bit-level, vs. the true key
    functionally_correct: Optional[bool] = None
    restarts: int = 0  # trailing defaults keep positional callers working
    #: Learned-clause hygiene of the incremental solver: database
    #: reduction passes, clauses they deleted, and literals shaved off
    #: learned clauses by self-subsumption minimization.
    db_reductions: int = 0
    learned_deleted: int = 0
    minimized_lits: int = 0

    @staticmethod
    def from_result(
        circuit: str,
        result: AttackResult,
        functionally_correct: Optional[bool] = None,
    ) -> "SatAttackRecord":
        """Build a record from a :class:`repro.attacks.base.AttackResult`."""
        solver = result.details.get("solver", {})
        return SatAttackRecord(
            circuit=circuit,
            key_size=result.key_size,
            iterations=result.details.get("iterations", 0),
            conflicts=solver.get("conflicts", 0),
            decisions=solver.get("decisions", 0),
            restarts=solver.get("restarts", 0),
            db_reductions=solver.get("db_reductions", 0),
            learned_deleted=solver.get("learned_deleted", 0),
            minimized_lits=solver.get("minimized_lits", 0),
            elapsed_s=result.details.get("elapsed_s", 0.0),
            key_accuracy=(
                result.accuracy if result.true_key is not None else None
            ),
            functionally_correct=functionally_correct,
        )


def render_sat_attack_table(
    records: Sequence[SatAttackRecord],
    ml_accuracies: Optional[Mapping[str, float]] = None,
    title: str = "SAT attack (oracle-guided) vs. ML attacks (oracle-less)",
) -> str:
    """ASCII table of SAT-attack scaling, optionally with an ML column.

    ``ml_accuracies`` maps circuit names to an oracle-less attack's key
    accuracy (0..1) on the same locked instance.
    """
    headers = [
        "circuit",
        "key bits",
        "DIP iters",
        "conflicts",
        "decisions",
        "restarts",
        "db red",
        "time [s]",
        "key acc [%]",
    ]
    if ml_accuracies is not None:
        headers.append("ML acc [%]")
    rows = []
    for record in records:
        accuracy = (
            f"{100.0 * record.key_accuracy:.1f}"
            if record.key_accuracy is not None
            else "n/a"
        )
        if record.functionally_correct:
            accuracy += " (exact)"
        row: list[object] = [
            record.circuit,
            record.key_size,
            record.iterations,
            record.conflicts,
            record.decisions,
            record.restarts,
            record.db_reductions,
            round(record.elapsed_s, 3),
            accuracy,
        ]
        if ml_accuracies is not None:
            ml = ml_accuracies.get(record.circuit)
            row.append(f"{100.0 * ml:.1f}" if ml is not None else "n/a")
        rows.append(row)
    return render_table(headers, rows, title=title)
