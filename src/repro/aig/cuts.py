"""Cut computation on AIGs.

Two flavours, matching what the synthesis passes need:

* :func:`enumerate_cuts` — classic bottom-up k-feasible cut enumeration with
  a per-node cut limit, used by ``rewrite`` (k = 4).
* :func:`reconvergence_cut` — Mishchenko-style reconvergence-driven cut
  growing, used by ``refactor`` and ``resub`` for larger windows (k = 8-12).
"""

from __future__ import annotations

from typing import Optional

from repro.aig.aig import Aig, lit_var


class CutManager:
    """Lazily computes and memoizes k-feasible cuts per node.

    Safe to use during an in-place optimization pass: memoized entries belong
    to nodes upstream of the pass cursor, which the pass never mutates (see
    the pass-ordering argument in ``repro.synth.rewrite``).
    """

    def __init__(self, aig: Aig, k: int = 4, limit: int = 8):
        self.aig = aig
        self.k = k
        self.limit = limit
        self._memo: dict[int, list[tuple[int, ...]]] = {}

    def cuts(self, var: int) -> list[tuple[int, ...]]:
        """All stored cuts of ``var`` (sorted leaf tuples), trivial cut first."""
        memo = self._memo
        cached = memo.get(var)
        if cached is not None:
            return cached
        aig = self.aig
        # Iterative post-order computation to avoid deep recursion.
        stack = [var]
        while stack:
            v = stack[-1]
            if v in memo:
                stack.pop()
                continue
            if not aig.is_and(v):
                memo[v] = [(v,)]
                stack.pop()
                continue
            f0, f1 = aig.fanins(v)
            c0, c1 = lit_var(f0), lit_var(f1)
            missing = [c for c in (c0, c1) if c not in memo]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            memo[v] = self._merge(v, memo[c0], memo[c1])
        return memo[var]

    def _merge(
        self,
        var: int,
        cuts0: list[tuple[int, ...]],
        cuts1: list[tuple[int, ...]],
    ) -> list[tuple[int, ...]]:
        seen: set[tuple[int, ...]] = set()
        merged: list[tuple[int, ...]] = []
        for cut0 in cuts0:
            for cut1 in cuts1:
                union = tuple(sorted(set(cut0) | set(cut1)))
                if len(union) > self.k or union in seen:
                    continue
                seen.add(union)
                merged.append(union)
        # Drop dominated cuts (a cut is dominated if a subset cut exists).
        merged.sort(key=len)
        kept: list[tuple[int, ...]] = []
        for cut in merged:
            cut_set = set(cut)
            if any(set(k) <= cut_set for k in kept):
                continue
            kept.append(cut)
            if len(kept) >= self.limit:
                break
        return [(var,)] + kept

    def invalidate(self, var: int) -> None:
        self._memo.pop(var, None)


def enumerate_cuts(
    aig: Aig, k: int = 4, limit: int = 8
) -> dict[int, list[tuple[int, ...]]]:
    """All k-feasible cuts for every live AND node (convenience wrapper)."""
    manager = CutManager(aig, k=k, limit=limit)
    return {var: manager.cuts(var) for var in aig.topological_ands()}


def reconvergence_cut(
    aig: Aig, root: int, max_leaves: int = 8, max_visits: int = 200
) -> tuple[int, ...]:
    """Grow a reconvergence-driven cut of at most ``max_leaves`` leaves.

    Starting from the root's fanins, repeatedly expands the leaf whose
    replacement by its own fanins increases the leaf count the least
    (preferring expansions that *reduce* it, i.e. reconvergence).  Stops when
    no expansion fits the leaf budget.
    """
    if not aig.is_and(root):
        return (root,)
    f0, f1 = aig.fanins(root)
    leaves = {lit_var(f0), lit_var(f1)}
    visits = 0
    while visits < max_visits:
        visits += 1
        best_leaf: Optional[int] = None
        best_cost = None
        # sorted(): ties on cost must break by node id, not set hashing —
        # the chosen expansion decides the final cut.
        for leaf in sorted(leaves):
            if not aig.is_and(leaf):
                continue
            g0, g1 = aig.fanins(leaf)
            candidates = {lit_var(g0), lit_var(g1)}
            new_size = len(leaves) - 1 + len(candidates - (leaves - {leaf}))
            cost = new_size - len(leaves)
            if new_size > max_leaves:
                continue
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_leaf = leaf
        if best_leaf is None:
            break
        g0, g1 = aig.fanins(best_leaf)
        leaves.discard(best_leaf)
        leaves.add(lit_var(g0))
        leaves.add(lit_var(g1))
        if best_cost is not None and best_cost > 0 and len(leaves) >= max_leaves:
            break
    return tuple(sorted(leaves))
