"""AIG simulation with arbitrary-width bit-parallel words.

Two interchangeable backends share the same semantics:

* **int** — words are Python integers: bit ``p`` of a node's word is its
  value under pattern ``p``.  Arbitrary precision makes complementation
  exact (XOR with a width mask) and supports exhaustive simulation of
  cones up to ~16 inputs, which is how cut functions are computed during
  rewriting.  This is the reference implementation.
* **packed** — words are numpy ``uint64`` lane arrays (64 patterns per
  lane, little-endian: lane ``i`` holds pattern bits ``64*i .. 64*i+63``).
  Bit-identical to the int backend by construction: the same
  AND/complement algebra, with tail bits beyond ``width`` masked only at
  extraction.  Its value is staying in the lane domain end-to-end — the
  miter prefilter and batched oracle evaluation consume
  :func:`simulate_lanes`/:func:`po_lanes` output directly (popcounts,
  first-set-bit extraction, numpy pattern matrices) without ever
  materialising a Python bigint per node.

CPython's bigint bitwise ops are themselves memory-bandwidth-bound C
loops, so for whole-word results the int path is competitive at any
width; ``backend="auto"`` therefore only switches the int-in/int-out
entry points to packed at or above :data:`PACKED_MIN_WIDTH` bits, where
the lane pass amortises numpy per-op overhead.  Callers that want the
packed backend's real speedup should consume lanes, not words.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.aig.aig import CONST_VAR, Aig, lit_var
from repro.errors import AigError
from repro.utils.rng import make_rng
from repro.utils.truth import TruthTable

_LANE_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
#: ``backend="auto"`` switches from int words to packed lanes at this
#: width: below it, numpy call overhead loses to CPython's bigint bit ops.
PACKED_MIN_WIDTH = 1 << 18


def _num_lanes(width: int) -> int:
    return max(1, (width + _LANE_BITS - 1) // _LANE_BITS)


def _resolve_backend(backend: str, width: int) -> str:
    if backend == "auto":
        return "packed" if width >= PACKED_MIN_WIDTH else "int"
    if backend not in ("packed", "int"):
        raise AigError(f"unknown simulation backend {backend!r}")
    return backend


def word_to_lanes(word: int, width: int) -> np.ndarray:
    """Split an integer word into little-endian uint64 lanes."""
    nlanes = _num_lanes(width)
    if word.bit_length() > width:
        word &= (1 << width) - 1
    raw = word.to_bytes(nlanes * 8, "little")
    return np.frombuffer(raw, dtype="<u8").astype(np.uint64)


def lanes_to_word(lanes: np.ndarray, width: int) -> int:
    """Reassemble lanes into an integer word, masking bits beyond ``width``.

    The tail is masked lane-side (one uint64 op) rather than with a
    ``width``-bit integer mask, which would dominate at large widths.
    """
    tail = width % _LANE_BITS
    if tail:
        lanes = np.array(lanes, dtype=np.uint64)
        lanes[-1] &= np.uint64((1 << tail) - 1)
    raw = np.ascontiguousarray(lanes, dtype="<u8").tobytes()
    return int.from_bytes(raw, "little")


def simulate_words(
    aig: Aig, pi_words: Mapping[int, int], width: int
) -> dict[int, int]:
    """Simulate all live nodes given one integer word per PI variable.

    ``pi_words`` maps PI *variable ids* to integer words of ``width`` bits.
    Returns a word for every live variable (keyed by variable id).
    """
    mask = (1 << width) - 1
    words: dict[int, int] = {CONST_VAR: 0}
    for var in aig.pi_vars():
        if var not in pi_words:
            raise AigError(f"missing stimulus for PI var {var}")
        words[var] = pi_words[var] & mask
    for var in aig.topological_ands():
        f0, f1 = aig.fanins(var)
        w0 = words[lit_var(f0)] ^ (mask if f0 & 1 else 0)
        w1 = words[lit_var(f1)] ^ (mask if f1 & 1 else 0)
        words[var] = w0 & w1
    return words


def po_words(aig: Aig, words: Mapping[int, int], width: int) -> list[int]:
    """Extract output words from a :func:`simulate_words` result."""
    mask = (1 << width) - 1
    out = []
    for po in aig.po_lits():
        word = words[lit_var(po)]
        out.append((word ^ mask) & mask if po & 1 else word & mask)
    return out


def simulate_lanes(
    aig: Aig, pi_lanes: Mapping[int, np.ndarray], width: int
) -> dict[int, np.ndarray]:
    """Packed-backend core: simulate all live nodes over uint64 lanes.

    ``pi_lanes`` maps PI variable ids to uint64 arrays of
    ``ceil(width / 64)`` lanes.  Complementation flips whole lanes, so
    lane bits beyond ``width`` are garbage in-flight — they are masked at
    extraction (:func:`lanes_to_word` / :func:`po_lanes`), never before,
    which keeps the inner loop to two vector ops per AND node.
    """
    nlanes = _num_lanes(width)
    lanes: dict[int, np.ndarray] = {CONST_VAR: np.zeros(nlanes, dtype=np.uint64)}
    for var in aig.pi_vars():
        if var not in pi_lanes:
            raise AigError(f"missing stimulus for PI var {var}")
        arr = np.asarray(pi_lanes[var], dtype=np.uint64)
        if arr.shape != (nlanes,):
            raise AigError(
                f"PI var {var} stimulus has shape {arr.shape}, want ({nlanes},)"
            )
        lanes[var] = arr
    for var in aig.topological_ands():
        f0, f1 = aig.fanins(var)
        w0 = lanes[lit_var(f0)]
        if f0 & 1:
            w0 = w0 ^ _ALL_ONES
        w1 = lanes[lit_var(f1)]
        if f1 & 1:
            w1 = w1 ^ _ALL_ONES
        lanes[var] = w0 & w1
    return lanes


def po_lanes(
    aig: Aig, lanes: Mapping[int, np.ndarray], width: int
) -> list[np.ndarray]:
    """Extract output lanes from a :func:`simulate_lanes` result.

    Tail bits beyond ``width`` in the final lane are zeroed.
    """
    nlanes = _num_lanes(width)
    tail = width % _LANE_BITS
    out = []
    for po in aig.po_lits():
        arr = lanes[lit_var(po)]
        if po & 1:
            arr = arr ^ _ALL_ONES
        elif tail:
            arr = arr.copy()
        if tail:
            arr[nlanes - 1] &= np.uint64((1 << tail) - 1)
        out.append(arr)
    return out


def simulate_packed(
    aig: Aig, pi_words: Mapping[int, int], width: int
) -> dict[int, int]:
    """Packed-backend drop-in for :func:`simulate_words`.

    Takes and returns integer words like the reference implementation but
    runs the AND-graph pass over uint64 lanes.  Bit-identical to
    :func:`simulate_words` for every live variable.
    """
    pi_lanes = {
        var: word_to_lanes(word, width) for var, word in pi_words.items()
    }
    lanes = simulate_lanes(aig, pi_lanes, width)
    return {var: lanes_to_word(arr, width) for var, arr in lanes.items()}


def random_signatures(
    aig: Aig, width: int = 256, seed: int = 0, backend: str = "auto"
) -> dict[int, int]:
    """Random simulation signatures for every live node (for equivalence
    filtering in resubstitution and for quick functional checks).

    Both backends consume the same rng byte stream, so signatures are
    identical regardless of ``backend``.
    """
    rng = make_rng(seed)
    pi_words = {
        var: int.from_bytes(rng.bytes((width + 7) // 8), "big") & ((1 << width) - 1)
        for var in aig.pi_vars()
    }
    if _resolve_backend(backend, width) == "packed":
        return simulate_packed(aig, pi_words, width)
    return simulate_words(aig, pi_words, width)


def exhaustive_signatures(aig: Aig, backend: str = "auto") -> dict[int, int]:
    """Exhaustive simulation over all ``2**num_pis`` patterns (<= 16 PIs)."""
    num = aig.num_pis
    if num > 16:
        raise AigError("exhaustive AIG simulation limited to 16 PIs")
    width = 1 << num
    pi_words = {}
    for index, var in enumerate(aig.pi_vars()):
        pi_words[var] = TruthTable.var(index, num).bits
    if _resolve_backend(backend, width) == "packed":
        return simulate_packed(aig, pi_words, width)
    return simulate_words(aig, pi_words, width)


def output_truth_tables(aig: Aig) -> list[TruthTable]:
    """Truth table of every PO over the PI variables (<= 16 PIs)."""
    num = aig.num_pis
    words = exhaustive_signatures(aig)
    width = 1 << num
    return [
        TruthTable(word, num)
        for word in po_words(aig, words, width)
    ]


def cut_truth_table(aig: Aig, root_lit: int, leaves: Sequence[int]) -> TruthTable:
    """Truth table of ``root_lit`` as a function of cut ``leaves``.

    ``leaves`` are variable ids forming a cut of the root's cone; the table's
    variable ``i`` corresponds to ``leaves[i]``.
    """
    nvars = len(leaves)
    if nvars > 16:
        raise AigError("cut truth tables limited to 16 leaves")
    width = 1 << nvars
    mask = (1 << width) - 1
    words: dict[int, int] = {CONST_VAR: 0}
    for index, leaf in enumerate(leaves):
        words[leaf] = TruthTable.var(index, nvars).bits
    root = lit_var(root_lit)
    if root in words:
        bits = words[root]
    else:
        for var in aig.cone_vars(root_lit, leaves):
            f0, f1 = aig.fanins(var)
            w0 = words[lit_var(f0)] ^ (mask if f0 & 1 else 0)
            w1 = words[lit_var(f1)] ^ (mask if f1 & 1 else 0)
            words[var] = w0 & w1
        bits = words[root]
    if root_lit & 1:
        bits ^= mask
    return TruthTable(bits & mask, nvars)


def functionally_equal(
    first: Aig,
    second: Aig,
    exhaustive_limit: int = 14,
    width: int = 1024,
    seed: int = 7,
    backend: str = "auto",
) -> bool:
    """Check PO-by-PO functional equality of two AIGs with shared PI names.

    Uses exhaustive simulation when the circuits have at most
    ``exhaustive_limit`` inputs, random simulation otherwise (a strong
    randomized check, not a proof).
    """
    if first.pi_names() != second.pi_names():
        raise AigError("AIGs have different PI name lists")
    if first.num_pos != second.num_pos:
        return False
    num = first.num_pis
    if num <= exhaustive_limit:
        sim_width = 1 << num
        pi_bits = {
            name: TruthTable.var(i, num).bits
            for i, name in enumerate(first.pi_names())
        }
    else:
        sim_width = width
        rng = make_rng(seed)
        pi_bits = {
            name: int.from_bytes(rng.bytes((width + 7) // 8), "big")
            & ((1 << width) - 1)
            for name in first.pi_names()
        }
    pis_a = {
        var: pi_bits[name] for var, name in zip(first.pi_vars(), first.pi_names())
    }
    pis_b = {
        var: pi_bits[name] for var, name in zip(second.pi_vars(), second.pi_names())
    }
    if _resolve_backend(backend, sim_width) == "packed":
        # Stay in the lane domain: only POs are extracted, never converted
        # back to bigints, so the comparison is pure numpy.
        lanes_a = simulate_lanes(
            first,
            {var: word_to_lanes(w, sim_width) for var, w in pis_a.items()},
            sim_width,
        )
        lanes_b = simulate_lanes(
            second,
            {var: word_to_lanes(w, sim_width) for var, w in pis_b.items()},
            sim_width,
        )
        return all(
            np.array_equal(a, b)
            for a, b in zip(
                po_lanes(first, lanes_a, sim_width),
                po_lanes(second, lanes_b, sim_width),
            )
        )
    words_a = simulate_words(first, pis_a, sim_width)
    words_b = simulate_words(second, pis_b, sim_width)
    return po_words(first, words_a, sim_width) == po_words(
        second, words_b, sim_width
    )
