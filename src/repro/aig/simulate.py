"""AIG simulation with arbitrary-width bit-parallel words.

Words are Python integers: bit ``p`` of a node's word is its value under
pattern ``p``.  Arbitrary precision makes complementation exact (XOR with a
width mask) and supports exhaustive simulation of cones up to ~16 inputs,
which is how cut functions are computed during rewriting.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.aig.aig import CONST_VAR, Aig, lit_var
from repro.errors import AigError
from repro.utils.rng import make_rng
from repro.utils.truth import TruthTable


def simulate_words(
    aig: Aig, pi_words: Mapping[int, int], width: int
) -> dict[int, int]:
    """Simulate all live nodes given one integer word per PI variable.

    ``pi_words`` maps PI *variable ids* to integer words of ``width`` bits.
    Returns a word for every live variable (keyed by variable id).
    """
    mask = (1 << width) - 1
    words: dict[int, int] = {CONST_VAR: 0}
    for var in aig.pi_vars():
        if var not in pi_words:
            raise AigError(f"missing stimulus for PI var {var}")
        words[var] = pi_words[var] & mask
    for var in aig.topological_ands():
        f0, f1 = aig.fanins(var)
        w0 = words[lit_var(f0)] ^ (mask if f0 & 1 else 0)
        w1 = words[lit_var(f1)] ^ (mask if f1 & 1 else 0)
        words[var] = w0 & w1
    return words


def po_words(aig: Aig, words: Mapping[int, int], width: int) -> list[int]:
    """Extract output words from a :func:`simulate_words` result."""
    mask = (1 << width) - 1
    out = []
    for po in aig.po_lits():
        word = words[lit_var(po)]
        out.append((word ^ mask) & mask if po & 1 else word & mask)
    return out


def random_signatures(aig: Aig, width: int = 256, seed: int = 0) -> dict[int, int]:
    """Random simulation signatures for every live node (for equivalence
    filtering in resubstitution and for quick functional checks)."""
    rng = make_rng(seed)
    pi_words = {
        var: int.from_bytes(rng.bytes((width + 7) // 8), "big") & ((1 << width) - 1)
        for var in aig.pi_vars()
    }
    return simulate_words(aig, pi_words, width)


def exhaustive_signatures(aig: Aig) -> dict[int, int]:
    """Exhaustive simulation over all ``2**num_pis`` patterns (<= 16 PIs)."""
    num = aig.num_pis
    if num > 16:
        raise AigError("exhaustive AIG simulation limited to 16 PIs")
    width = 1 << num
    pi_words = {}
    for index, var in enumerate(aig.pi_vars()):
        pi_words[var] = TruthTable.var(index, num).bits
    return simulate_words(aig, pi_words, width)


def output_truth_tables(aig: Aig) -> list[TruthTable]:
    """Truth table of every PO over the PI variables (<= 16 PIs)."""
    num = aig.num_pis
    words = exhaustive_signatures(aig)
    width = 1 << num
    return [
        TruthTable(word, num)
        for word in po_words(aig, words, width)
    ]


def cut_truth_table(aig: Aig, root_lit: int, leaves: Sequence[int]) -> TruthTable:
    """Truth table of ``root_lit`` as a function of cut ``leaves``.

    ``leaves`` are variable ids forming a cut of the root's cone; the table's
    variable ``i`` corresponds to ``leaves[i]``.
    """
    nvars = len(leaves)
    if nvars > 16:
        raise AigError("cut truth tables limited to 16 leaves")
    width = 1 << nvars
    mask = (1 << width) - 1
    words: dict[int, int] = {CONST_VAR: 0}
    for index, leaf in enumerate(leaves):
        words[leaf] = TruthTable.var(index, nvars).bits
    root = lit_var(root_lit)
    if root in words:
        bits = words[root]
    else:
        for var in aig.cone_vars(root_lit, leaves):
            f0, f1 = aig.fanins(var)
            w0 = words[lit_var(f0)] ^ (mask if f0 & 1 else 0)
            w1 = words[lit_var(f1)] ^ (mask if f1 & 1 else 0)
            words[var] = w0 & w1
        bits = words[root]
    if root_lit & 1:
        bits ^= mask
    return TruthTable(bits & mask, nvars)


def functionally_equal(
    first: Aig,
    second: Aig,
    exhaustive_limit: int = 14,
    width: int = 1024,
    seed: int = 7,
) -> bool:
    """Check PO-by-PO functional equality of two AIGs with shared PI names.

    Uses exhaustive simulation when the circuits have at most
    ``exhaustive_limit`` inputs, random simulation otherwise (a strong
    randomized check, not a proof).
    """
    if first.pi_names() != second.pi_names():
        raise AigError("AIGs have different PI name lists")
    if first.num_pos != second.num_pos:
        return False
    num = first.num_pis
    if num <= exhaustive_limit:
        sim_width = 1 << num
        pi_bits = {
            name: TruthTable.var(i, num).bits
            for i, name in enumerate(first.pi_names())
        }
    else:
        sim_width = width
        rng = make_rng(seed)
        pi_bits = {
            name: int.from_bytes(rng.bytes((width + 7) // 8), "big")
            & ((1 << width) - 1)
            for name in first.pi_names()
        }
    words_a = simulate_words(
        first,
        {var: pi_bits[name] for var, name in zip(first.pi_vars(), first.pi_names())},
        sim_width,
    )
    words_b = simulate_words(
        second,
        {var: pi_bits[name] for var, name in zip(second.pi_vars(), second.pi_names())},
        sim_width,
    )
    return po_words(first, words_a, sim_width) == po_words(
        second, words_b, sim_width
    )
