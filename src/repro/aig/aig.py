"""The mutable AIG data structure with structural hashing and replacement.

Literal encoding follows the AIGER/ABC convention: literal ``2*v`` is the
positive phase of variable ``v`` and ``2*v + 1`` the complemented phase.
Variable 0 is the constant-FALSE node, so literal 0 is constant 0 and literal
1 is constant 1.

The class supports the two usage styles synthesis needs:

* *append-only construction* (:meth:`add_and` with folding + strashing), used
  when converting netlists and when rebuilding (balance, compaction);
* *in-place surgery* (:meth:`replace`), used by DAG-aware rewriting,
  refactoring and resubstitution.  ``replace`` rewires all fanouts of a node
  onto a replacement literal, cascading constant folding and strash merges
  downstream exactly like ABC's ``Abc_AigReplace``, and deletes the dead cone.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import AigError

CONST_VAR = 0

# Fanin sentinel values for non-AND nodes.
_FANIN_PI = -1
_FANIN_DETACHED = -2
_FANIN_DEAD = -3


def make_lit(var: int, compl: bool = False) -> int:
    """Build a literal from a variable index and complement flag."""
    return (var << 1) | int(compl)


def lit_var(lit: int) -> int:
    """Variable index of a literal."""
    return lit >> 1


def lit_not(lit: int) -> int:
    """Complement a literal."""
    return lit ^ 1


def lit_is_compl(lit: int) -> bool:
    """True when the literal is the complemented phase."""
    return bool(lit & 1)


class Aig:
    """A combinational AIG with named primary inputs and outputs."""

    def __init__(self, name: str = "aig"):
        self.name = name
        # Node storage, indexed by variable id.  Variable 0 is constant-0.
        self._fanin0: list[int] = [_FANIN_PI]
        self._fanin1: list[int] = [_FANIN_PI]
        self._fanouts: list[set[int]] = [set()]
        self._po_refs: list[int] = [0]
        self._is_pi: list[bool] = [False]
        self._dead: list[bool] = [False]
        self._strash: dict[tuple[int, int], int] = {}
        self._pis: list[int] = []
        self._pi_names: list[str] = []
        self._pos: list[int] = []
        self._po_names: list[str] = []

    # -- introspection -------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Total allocated variables, including dead ones."""
        return len(self._fanin0)

    @property
    def num_pis(self) -> int:
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        return len(self._pos)

    def num_ands(self) -> int:
        """Number of live AND nodes."""
        return sum(
            1
            for v in range(self.num_vars)
            if not self._dead[v] and self.is_and(v)
        )

    def pi_vars(self) -> list[int]:
        return list(self._pis)

    def pi_names(self) -> list[str]:
        return list(self._pi_names)

    def po_lits(self) -> list[int]:
        return list(self._pos)

    def po_names(self) -> list[str]:
        return list(self._po_names)

    def is_pi(self, var: int) -> bool:
        return self._is_pi[var]

    def is_const(self, var: int) -> bool:
        return var == CONST_VAR

    def is_and(self, var: int) -> bool:
        return not self._is_pi[var] and var != CONST_VAR and self._fanin0[var] >= 0

    def is_dead(self, var: int) -> bool:
        return self._dead[var]

    def fanins(self, var: int) -> tuple[int, int]:
        """The two fanin literals of an AND node."""
        if not self.is_and(var):
            raise AigError(f"variable {var} is not a live AND node")
        return self._fanin0[var], self._fanin1[var]

    def fanout_vars(self, var: int) -> set[int]:
        """Variables of the AND nodes reading ``var`` (live ones)."""
        return {f for f in self._fanouts[var] if not self._dead[f]}

    def num_refs(self, var: int) -> int:
        """Fanout count plus primary-output references."""
        return len(self._fanouts[var]) + self._po_refs[var]

    # -- construction ---------------------------------------------------------

    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input; returns its positive literal."""
        var = self._new_var(is_pi=True)
        self._pis.append(var)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        return make_lit(var)

    def add_po(self, lit: int, name: Optional[str] = None) -> int:
        """Register a primary output literal; returns the PO index."""
        self._check_lit(lit)
        self._pos.append(lit)
        self._po_names.append(name if name is not None else f"po{len(self._pos) - 1}")
        self._po_refs[lit_var(lit)] += 1
        return len(self._pos) - 1

    def set_po(self, index: int, lit: int) -> None:
        """Redirect an existing primary output to a new literal."""
        self._check_lit(lit)
        old = self._pos[index]
        self._pos[index] = lit
        self._po_refs[lit_var(old)] -= 1
        self._po_refs[lit_var(lit)] += 1
        self._delete_if_dead(lit_var(old))

    def _new_var(self, is_pi: bool) -> int:
        var = len(self._fanin0)
        self._fanin0.append(_FANIN_PI)
        self._fanin1.append(_FANIN_PI)
        self._fanouts.append(set())
        self._po_refs.append(0)
        self._is_pi.append(is_pi)
        self._dead.append(False)
        return var

    def _check_lit(self, lit: int) -> None:
        var = lit_var(lit)
        if not 0 <= var < self.num_vars or self._dead[var]:
            raise AigError(f"literal {lit} references a missing or dead node")

    @staticmethod
    def _normalize(lit0: int, lit1: int) -> tuple[int, int]:
        return (lit1, lit0) if lit0 > lit1 else (lit0, lit1)

    @staticmethod
    def fold_and(lit0: int, lit1: int) -> Optional[int]:
        """Constant-fold AND(lit0, lit1); None when a real node is needed."""
        lit0, lit1 = Aig._normalize(lit0, lit1)
        if lit0 == 0 or lit0 == lit_not(lit1):
            return 0
        if lit0 == 1:
            return lit1
        if lit0 == lit1:
            return lit0
        return None

    def add_and(self, lit0: int, lit1: int) -> int:
        """AND with constant folding and structural hashing."""
        self._check_lit(lit0)
        self._check_lit(lit1)
        folded = self.fold_and(lit0, lit1)
        if folded is not None:
            return folded
        lit0, lit1 = self._normalize(lit0, lit1)
        existing = self._strash.get((lit0, lit1))
        if existing is not None:
            return make_lit(existing)
        var = self._new_var(is_pi=False)
        self._fanin0[var] = lit0
        self._fanin1[var] = lit1
        self._strash[(lit0, lit1)] = var
        self._fanouts[lit_var(lit0)].add(var)
        self._fanouts[lit_var(lit1)].add(var)
        return make_lit(var)

    def lookup_and(self, lit0: int, lit1: int) -> Optional[int]:
        """Folded or strash-hit literal for AND(lit0, lit1); None if absent."""
        folded = self.fold_and(lit0, lit1)
        if folded is not None:
            return folded
        lit0, lit1 = self._normalize(lit0, lit1)
        existing = self._strash.get((lit0, lit1))
        return make_lit(existing) if existing is not None else None

    # -- derived operators ----------------------------------------------------

    def add_or(self, lit0: int, lit1: int) -> int:
        return lit_not(self.add_and(lit_not(lit0), lit_not(lit1)))

    def add_xor(self, lit0: int, lit1: int) -> int:
        return self.add_or(
            self.add_and(lit0, lit_not(lit1)), self.add_and(lit_not(lit0), lit1)
        )

    def add_mux(self, sel: int, lit0: int, lit1: int) -> int:
        """``lit1`` when ``sel`` else ``lit0``."""
        return self.add_or(
            self.add_and(sel, lit1), self.add_and(lit_not(sel), lit0)
        )

    def add_many_and(self, lits: Sequence[int]) -> int:
        """Balanced AND over any number of literals (1 for empty)."""
        lits = list(lits)
        if not lits:
            return 1
        while len(lits) > 1:
            nxt = [
                self.add_and(lits[i], lits[i + 1]) for i in range(0, len(lits) - 1, 2)
            ]
            if len(lits) % 2:
                nxt.append(lits[-1])
            lits = nxt
        return lits[0]

    def add_many_or(self, lits: Sequence[int]) -> int:
        return lit_not(self.add_many_and([lit_not(l) for l in lits]))

    # -- traversal -------------------------------------------------------------

    def live_vars(self) -> Iterator[int]:
        """All live variables (const, PIs, ANDs) in id order."""
        for var in range(self.num_vars):
            if not self._dead[var]:
                yield var

    def topological_ands(self, roots: Optional[Iterable[int]] = None) -> list[int]:
        """Live AND variables in topological (fanin-first) order.

        Restricted to the cone of ``roots`` (literals) when given, otherwise
        the cone of all primary outputs plus every live AND node.
        """
        if roots is None:
            root_vars = [lit_var(po) for po in self._pos]
            root_vars.extend(v for v in self.live_vars() if self.is_and(v))
        else:
            root_vars = [lit_var(r) for r in roots]
        order: list[int] = []
        state: dict[int, int] = {}
        for root in root_vars:
            if state.get(root) == 2 or not self.is_and(root):
                continue
            stack: list[tuple[int, int]] = [(root, 0)]
            while stack:
                var, phase = stack.pop()
                if state.get(var) == 2:
                    continue
                if phase == 0:
                    state[var] = 1
                    stack.append((var, 1))
                    for lit in (self._fanin1[var], self._fanin0[var]):
                        child = lit_var(lit)
                        if self.is_and(child) and state.get(child) != 2:
                            if state.get(child) == 1:
                                raise AigError(f"cycle detected at var {child}")
                            stack.append((child, 0))
                else:
                    state[var] = 2
                    order.append(var)
        return order

    def levels(self) -> dict[int, int]:
        """Level (AND depth) of every live variable; PIs/const are level 0."""
        level = {CONST_VAR: 0}
        for var in self._pis:
            level[var] = 0
        for var in self.topological_ands():
            f0, f1 = self._fanin0[var], self._fanin1[var]
            level[var] = 1 + max(level[lit_var(f0)], level[lit_var(f1)])
        return level

    def depth(self) -> int:
        """Maximum PO level."""
        level = self.levels()
        return max((level[lit_var(po)] for po in self._pos), default=0)

    def cone_vars(self, root_lit: int, leaves: Iterable[int]) -> list[int]:
        """AND variables between cut ``leaves`` and ``root_lit``, topo order.

        Raises :class:`AigError` if the cone escapes the leaves (reaches a PI
        or constant not in the leaf set) — that means ``leaves`` is not a
        valid cut of the root.
        """
        leaf_set = set(leaves)
        root = lit_var(root_lit)
        order: list[int] = []
        state: dict[int, int] = {}
        if root in leaf_set or not self.is_and(root):
            return order
        stack: list[tuple[int, int]] = [(root, 0)]
        while stack:
            var, phase = stack.pop()
            if state.get(var) == 2:
                continue
            if phase == 0:
                state[var] = 1
                stack.append((var, 1))
                for lit in (self._fanin1[var], self._fanin0[var]):
                    child = lit_var(lit)
                    if child in leaf_set or state.get(child) == 2:
                        continue
                    if not self.is_and(child):
                        raise AigError(
                            f"cone of {root} escapes cut at var {child}"
                        )
                    if state.get(child) == 1:
                        raise AigError(f"cycle detected at var {child}")
                    stack.append((child, 0))
            else:
                state[var] = 2
                order.append(var)
        return order

    def reaches(self, start_lit: int, target_var: int, stop_vars: set[int]) -> bool:
        """True when ``target_var`` is reachable from ``start_lit`` downward.

        The search walks fanins and prunes at ``stop_vars`` (and at PIs).
        Used to reject rewrite candidates that would create cycles.
        """
        start = lit_var(start_lit)
        if start == target_var:
            return True
        seen = {start}
        stack = [start]
        while stack:
            var = stack.pop()
            if not self.is_and(var) or var in stop_vars:
                continue
            for lit in (self._fanin0[var], self._fanin1[var]):
                child = lit_var(lit)
                if child == target_var:
                    return True
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return False

    # -- MFFC ------------------------------------------------------------------

    def mffc(self, root_var: int, leaves: Iterable[int]) -> set[int]:
        """Maximum fanout-free cone of ``root_var`` bounded by ``leaves``.

        The set of AND nodes (including the root) that would become dead if
        the root were replaced — nodes all of whose fanout paths lead back to
        the root.
        """
        leaf_set = set(leaves)
        if not self.is_and(root_var):
            return set()
        decremented: dict[int, int] = {}
        mffc_nodes: set[int] = set()

        def deref(var: int) -> None:
            mffc_nodes.add(var)
            for lit in (self._fanin0[var], self._fanin1[var]):
                child = lit_var(lit)
                if child in leaf_set or not self.is_and(child):
                    continue
                decremented[child] = decremented.get(child, 0) + 1
                if decremented[child] == self.num_refs(child):
                    deref(child)

        deref(root_var)
        return mffc_nodes

    # -- in-place replacement ---------------------------------------------------

    def replace(self, old_var: int, new_lit: int) -> None:
        """Rewire every reader of ``old_var`` to ``new_lit`` and clean up.

        Cascades constant folding and structural-hash merges through the
        fanout cone, then deletes the dead cone of the replaced node.  The
        caller must guarantee ``new_lit`` is not in the fanout cone of
        ``old_var`` (checked cheaply for the direct case).
        """
        self._check_lit(new_lit)
        if self._dead[old_var]:
            raise AigError(f"cannot replace dead node {old_var}")
        if lit_var(new_lit) == old_var:
            raise AigError("replacement literal references the replaced node")
        # Worklist entries hold a protection reference on the replacement
        # node (via _po_refs) so cascading deletions cannot reclaim it before
        # the entry is processed.  ``forward`` records, for every node already
        # replaced during this call, the literal that superseded it: a pending
        # entry whose target was itself replaced in the interim is resolved
        # through the chain instead of attaching readers to a detached node.
        worklist: list[tuple[int, int]] = [(old_var, new_lit)]
        self._po_refs[lit_var(new_lit)] += 1
        forward: dict[int, int] = {}
        guards: list[int] = []
        replaced: list[int] = []
        while worklist:
            old, new = worklist.pop()
            pushed_var = lit_var(new)
            self._po_refs[pushed_var] -= 1
            seen: set[int] = set()
            while lit_var(new) in forward and lit_var(new) not in seen:
                seen.add(lit_var(new))
                new = forward[lit_var(new)] ^ (new & 1)
            new_var = lit_var(new)
            if self._dead[old] or new_var == old:
                self._delete_if_dead(pushed_var)
                continue
            # Redirect primary outputs.
            for index, po in enumerate(self._pos):
                if lit_var(po) == old:
                    self._pos[index] = new ^ (po & 1)
                    self._po_refs[old] -= 1
                    self._po_refs[new_var] += 1
            # Redirect fanout AND nodes.  Iterate in sorted order: raw set
            # order depends on the set's insertion/deletion history, which a
            # prefix-cache snapshot (clone()) cannot reproduce — the cascade
            # below is order-sensitive through strash merges, so a canonical
            # order is what keeps cache-resumed synthesis bit-identical to
            # uncached on any circuit.
            for fan in sorted(self._fanouts[old]):
                if self._dead[fan]:
                    self._fanouts[old].discard(fan)
                    continue
                folded = self._substitute_fanin(fan, old, new)
                if folded is not None:
                    # _substitute_fanin already holds a protection reference
                    # on the folded literal's node for this entry.
                    worklist.append((fan, folded))
            forward[old] = new
            # Guard every forward target until the cascade fully drains, so
            # later resolutions never land on a reclaimed node.
            guards.append(new_var)
            self._po_refs[new_var] += 1
            replaced.append(old)
        for guard in guards:
            self._po_refs[guard] -= 1
        for old in replaced:
            self._delete_if_dead(old)
        for guard in guards:
            self._delete_if_dead(guard)

    def _substitute_fanin(self, fan: int, old_var: int, new_lit: int) -> Optional[int]:
        """Replace ``old_var`` inside node ``fan``'s fanins.

        Returns a literal when the updated node folds to a constant, a fanin,
        or an existing strash entry — in that case ``fan`` is detached and the
        caller must replace it by the returned literal.  Returns ``None``
        when ``fan`` stays a proper AND node.
        """
        f0, f1 = self._fanin0[fan], self._fanin1[fan]
        self._strash.pop((f0, f1), None)
        for lit in (f0, f1):
            self._fanouts[lit_var(lit)].discard(fan)
        nf0 = (new_lit ^ (f0 & 1)) if lit_var(f0) == old_var else f0
        nf1 = (new_lit ^ (f1 & 1)) if lit_var(f1) == old_var else f1
        nf0, nf1 = self._normalize(nf0, nf1)
        folded = self.fold_and(nf0, nf1)
        if folded is None:
            existing = self._strash.get((nf0, nf1))
            if existing is not None and existing != fan:
                folded = make_lit(existing)
        if folded is not None:
            self._fanin0[fan] = _FANIN_DETACHED
            self._fanin1[fan] = _FANIN_DETACHED
            # Protect the fold target *before* reclaiming fan's former
            # fanins: the target may be one of those fanins (e.g.
            # AND(1, y) -> y) and must survive until the caller's worklist
            # entry consumes this protection reference.
            self._po_refs[lit_var(folded)] += 1
            for lit in (f0, f1):
                self._delete_if_dead(lit_var(lit))
            return folded
        self._fanin0[fan] = nf0
        self._fanin1[fan] = nf1
        self._strash[(nf0, nf1)] = fan
        self._fanouts[lit_var(nf0)].add(fan)
        self._fanouts[lit_var(nf1)].add(fan)
        return None

    def _delete_if_dead(self, var: int) -> None:
        """Delete ``var`` if it has no readers, cascading to its fanins."""
        stack = [var]
        while stack:
            v = stack.pop()
            if (
                v == CONST_VAR
                or self._is_pi[v]
                or self._dead[v]
                or self._fanouts[v]
                or self._po_refs[v] > 0
            ):
                continue
            f0, f1 = self._fanin0[v], self._fanin1[v]
            self._dead[v] = True
            if f0 >= 0:
                self._strash.pop((f0, f1), None)
                for lit in (f0, f1):
                    child = lit_var(lit)
                    self._fanouts[child].discard(v)
                    stack.append(child)
            self._fanin0[v] = _FANIN_DEAD
            self._fanin1[v] = _FANIN_DEAD

    def recycle(self, lit: int) -> None:
        """Reclaim the cone of ``lit`` if nothing references it.

        Used by optimization passes to clean up candidate structures that
        were built speculatively and then rejected.
        """
        self._delete_if_dead(lit_var(lit))

    # -- rebuilding ---------------------------------------------------------------

    def compact(self) -> "Aig":
        """Copy the live PO cone into a fresh AIG (drops dangling logic)."""
        out = Aig(self.name)
        mapping: dict[int, int] = {CONST_VAR: 0}
        for var, name in zip(self._pis, self._pi_names):
            mapping[var] = out.add_pi(name)
        for var in self.topological_ands(roots=self._pos):
            f0, f1 = self._fanin0[var], self._fanin1[var]
            l0 = mapping[lit_var(f0)] ^ (f0 & 1)
            l1 = mapping[lit_var(f1)] ^ (f1 & 1)
            mapping[var] = out.add_and(l0, l1)
        for po, name in zip(self._pos, self._po_names):
            out.add_po(mapping[lit_var(po)] ^ (po & 1), name)
        return out

    def copy(self) -> "Aig":
        return self.compact()

    def clone(self) -> "Aig":
        """Exact structural copy preserving variable ids, dead slots, the
        strash table and fanout sets (unlike :meth:`compact`, which renumbers
        into the live PO cone).

        In-place passes resumed on a clone behave exactly as they would have
        on the original — the property the recipe-prefix cache
        (:mod:`repro.synth.cache`) relies on to make cached synthesis
        bit-identical to uncached.  Fanout sets are rebuilt in sorted order
        so clones are deterministic regardless of the source set's history.
        """
        out = Aig.__new__(Aig)
        out.name = self.name
        out._fanin0 = list(self._fanin0)
        out._fanin1 = list(self._fanin1)
        out._fanouts = [set(sorted(s)) for s in self._fanouts]
        out._po_refs = list(self._po_refs)
        out._is_pi = list(self._is_pi)
        out._dead = list(self._dead)
        out._strash = dict(self._strash)
        out._pis = list(self._pis)
        out._pi_names = list(self._pi_names)
        out._pos = list(self._pos)
        out._po_names = list(self._po_names)
        return out

    def fingerprint(self) -> str:
        """SHA-256 of the exact structural state (ids included).

        Two AIGs with equal fingerprints are interchangeable as synthesis
        inputs: every deterministic transform produces the same result on
        both.  Used as the circuit half of the recipe-prefix cache key.
        """
        import hashlib

        payload = (
            self._fanin0,
            self._fanin1,
            self._is_pi,
            self._dead,
            self._pis,
            self._pi_names,
            self._pos,
            self._po_names,
        )
        return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()

    def check(self) -> None:
        """Validate internal invariants; raises :class:`AigError` on failure."""
        for var in range(self.num_vars):
            if self._dead[var]:
                continue
            if self.is_and(var):
                f0, f1 = self._fanin0[var], self._fanin1[var]
                if f0 > f1:
                    raise AigError(f"node {var} fanins not normalized")
                if self.fold_and(f0, f1) is not None:
                    raise AigError(f"node {var} should have been folded")
                if self._strash.get((f0, f1)) != var:
                    raise AigError(f"node {var} missing from strash table")
                for lit in (f0, f1):
                    child = lit_var(lit)
                    if self._dead[child]:
                        raise AigError(f"node {var} reads dead node {child}")
                    if var not in self._fanouts[child]:
                        raise AigError(f"fanout set of {child} misses {var}")
        for po in self._pos:
            if self._dead[lit_var(po)]:
                raise AigError("primary output references a dead node")
        self.topological_ands()  # raises on cycles

    def stats(self) -> dict[str, int]:
        return {
            "pis": self.num_pis,
            "pos": self.num_pos,
            "ands": self.num_ands(),
            "depth": self.depth(),
        }

    def __repr__(self) -> str:
        return (
            f"Aig(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"ands={self.num_ands()})"
        )
