"""Convert gate-level netlists into AIGs."""

from __future__ import annotations

from repro.aig.aig import Aig, lit_not
from repro.errors import AigError
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


def aig_from_netlist(netlist: Netlist) -> Aig:
    """Translate a primitive-gate netlist into a structurally hashed AIG.

    Primary input/output names are preserved, so key inputs
    (``keyinput<i>``) remain identifiable after any amount of synthesis.
    """
    aig = Aig(netlist.name)
    lits: dict[str, int] = {}
    for net in netlist.inputs:
        lits[net] = aig.add_pi(net)
    for gate in netlist.topological_gates():
        ins = [lits[n] for n in gate.inputs]
        lits[gate.output] = _gate_to_aig(aig, gate.gate_type, ins)
    for net in netlist.outputs:
        if net not in lits:
            raise AigError(f"primary output {net!r} is undriven")
        aig.add_po(lits[net], net)
    return aig


def _gate_to_aig(aig: Aig, gate_type: GateType, ins: list[int]) -> int:
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    if gate_type is GateType.BUF:
        return ins[0]
    if gate_type is GateType.NOT:
        return lit_not(ins[0])
    if gate_type is GateType.MUX:
        sel, a, b = ins
        return aig.add_mux(sel, a, b)
    if gate_type in (GateType.AND, GateType.NAND):
        out = aig.add_many_and(ins)
        return lit_not(out) if gate_type is GateType.NAND else out
    if gate_type in (GateType.OR, GateType.NOR):
        out = aig.add_many_or(ins)
        return lit_not(out) if gate_type is GateType.NOR else out
    if gate_type in (GateType.XOR, GateType.XNOR):
        out = ins[0]
        for lit in ins[1:]:
            out = aig.add_xor(out, lit)
        return lit_not(out) if gate_type is GateType.XNOR else out
    raise AigError(f"cannot convert gate type {gate_type}")  # pragma: no cover
