"""AIGER ASCII format (``.aag``) read/write for AIGs.

AIGER is the standard interchange format for and-inverter graphs (used by
ABC, aigtoaig, model checkers...).  Supporting it makes the synthesis
substrate interoperable with external tools and gives the test suite a
round-trip oracle.

Only the combinational subset is supported (no latches), matching the rest
of the library.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.aig.aig import Aig, lit_var
from repro.errors import AigError


def write_aiger(aig: Aig) -> str:
    """Serialize to AIGER ASCII (``aag``) text.

    Node variables are renumbered densely (PIs first, then ANDs in
    topological order) as the format requires.
    """
    order = aig.topological_ands(roots=aig.po_lits())
    mapping: dict[int, int] = {0: 0}
    next_var = 1
    for var in aig.pi_vars():
        mapping[var] = next_var
        next_var += 1
    for var in order:
        mapping[var] = next_var
        next_var += 1

    def map_lit(lit: int) -> int:
        return (mapping[lit_var(lit)] << 1) | (lit & 1)

    m = next_var - 1
    i = aig.num_pis
    o = aig.num_pos
    a = len(order)
    lines = [f"aag {m} {i} 0 {o} {a}"]
    lines.extend(str((mapping[var] << 1)) for var in aig.pi_vars())
    lines.extend(str(map_lit(po)) for po in aig.po_lits())
    for var in order:
        f0, f1 = aig.fanins(var)
        lhs = mapping[var] << 1
        rhs0, rhs1 = map_lit(f0), map_lit(f1)
        if rhs0 < rhs1:
            rhs0, rhs1 = rhs1, rhs0
        lines.append(f"{lhs} {rhs0} {rhs1}")
    for index, name in enumerate(aig.pi_names()):
        lines.append(f"i{index} {name}")
    for index, name in enumerate(aig.po_names()):
        lines.append(f"o{index} {name}")
    lines.append("c")
    lines.append(aig.name)
    return "\n".join(lines) + "\n"


def parse_aiger(text: str) -> Aig:
    """Parse AIGER ASCII (``aag``) text into an :class:`Aig`."""
    lines = [line.rstrip("\n") for line in text.splitlines()]
    if not lines or not lines[0].startswith("aag "):
        raise AigError("not an AIGER ASCII file (missing 'aag' header)")
    try:
        _tag, m, i, l, o, a = lines[0].split()[:6]
        m, i, l, o, a = int(m), int(i), int(l), int(o), int(a)
    except ValueError as exc:
        raise AigError(f"malformed AIGER header {lines[0]!r}") from exc
    if l:
        raise AigError("latches are not supported (combinational only)")
    body = lines[1:]
    if len(body) < i + o + a:
        raise AigError("truncated AIGER body")

    pi_lits = [int(body[k]) for k in range(i)]
    po_lits = [int(body[i + k]) for k in range(o)]
    and_rows = []
    for k in range(a):
        parts = body[i + o + k].split()
        if len(parts) != 3:
            raise AigError(f"malformed AND line {body[i + o + k]!r}")
        and_rows.append(tuple(int(p) for p in parts))

    # Symbol table and comment.
    pi_names = {k: f"pi{k}" for k in range(i)}
    po_names = {k: f"po{k}" for k in range(o)}
    name = "aiger"
    index = i + o + a
    while index < len(body):
        line = body[index]
        index += 1
        if line == "c":
            if index < len(body) and body[index].strip():
                name = body[index].strip()
            break
        if line.startswith("i") and " " in line:
            slot, symbol = line[1:].split(" ", 1)
            pi_names[int(slot)] = symbol
        elif line.startswith("o") and " " in line:
            slot, symbol = line[1:].split(" ", 1)
            po_names[int(slot)] = symbol

    aig = Aig(name)
    lit_map: dict[int, int] = {0: 0, 1: 1}
    for k, lit in enumerate(pi_lits):
        if lit & 1 or lit == 0:
            raise AigError(f"invalid PI literal {lit}")
        lit_map[lit] = aig.add_pi(pi_names[k])
        lit_map[lit ^ 1] = lit_map[lit] ^ 1
    for lhs, rhs0, rhs1 in and_rows:
        if lhs & 1:
            raise AigError(f"AND lhs must be even, got {lhs}")
        if rhs0 not in lit_map or rhs1 not in lit_map:
            raise AigError(f"AND {lhs} references undefined literal")
        built = aig.add_and(lit_map[rhs0], lit_map[rhs1])
        lit_map[lhs] = built
        lit_map[lhs ^ 1] = built ^ 1
    for k, lit in enumerate(po_lits):
        if lit not in lit_map:
            raise AigError(f"output references undefined literal {lit}")
        aig.add_po(lit_map[lit], po_names[k])
    return aig


def save_aiger(aig: Aig, path: Union[str, Path]) -> None:
    Path(path).write_text(write_aiger(aig))


def load_aiger(path: Union[str, Path]) -> Aig:
    return parse_aiger(Path(path).read_text())
