"""And-Inverter Graph (AIG) package: the synthesis intermediate form.

The AIG mirrors ABC's internal representation: two-input AND nodes with
complemented edges, structural hashing, constant folding, fanout tracking and
in-place node replacement with cascading simplification — the machinery that
DAG-aware rewriting, refactoring and resubstitution are built on.
"""

from repro.aig.aig import Aig, lit_is_compl, lit_not, lit_var, make_lit
from repro.aig.build import aig_from_netlist
from repro.aig.export import netlist_from_aig
from repro.aig.simulate import (
    cut_truth_table,
    exhaustive_signatures,
    random_signatures,
    simulate_words,
)
from repro.aig.cuts import enumerate_cuts, reconvergence_cut

__all__ = [
    "Aig",
    "make_lit",
    "lit_var",
    "lit_not",
    "lit_is_compl",
    "aig_from_netlist",
    "netlist_from_aig",
    "simulate_words",
    "random_signatures",
    "exhaustive_signatures",
    "cut_truth_table",
    "enumerate_cuts",
    "reconvergence_cut",
]
