"""Convert AIGs back to primitive-gate netlists.

The exporter recognizes common AIG idioms so the produced netlist looks like
real synthesized logic rather than a NAND2/INV soup: complemented-AND fanins
become NAND/NOR/OR forms and the two-level XOR/XNOR pattern is collapsed into
a single gate.  This is the netlist view that technology mapping and the
structural attacks consume.
"""

from __future__ import annotations

from repro.aig.aig import Aig, lit_not, lit_var
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


def _xor_pattern(aig: Aig, var: int) -> tuple[int, int] | None:
    """Detect ``var = (a & ~b) | (~a & b)`` (returns the XOR operand lits).

    In AIG form an XOR root is an AND of two complemented ANDs that share
    both operand variables with opposite polarities:
    ``var = ~(a'b') & ~(a b)`` encodings included via literal matching.
    """
    f0, f1 = aig.fanins(var)
    if not (f0 & 1) or not (f1 & 1):
        return None
    v0, v1 = lit_var(f0), lit_var(f1)
    if not (aig.is_and(v0) and aig.is_and(v1)) or v0 == v1:
        return None
    g00, g01 = aig.fanins(v0)
    g10, g11 = aig.fanins(v1)
    if {lit_var(g00), lit_var(g01)} != {lit_var(g10), lit_var(g11)}:
        return None
    pair0 = {g00, g01}
    pair1 = {g10, g11}
    if pair1 != {lit_not(g00), lit_not(g01)}:
        return None
    # var = ~(g00 & g01) & ~(~g00 & ~g01) = g00 XOR ~g01 ... work it out:
    # AND(~(a&b), ~(~a&~b)) = (a|b) & (~a|~b) = a XOR b with a=g00, b=g01.
    del pair0
    return g00, g01


def netlist_from_aig(
    aig: Aig, detect_xor: bool = True, name: str | None = None
) -> Netlist:
    """Export the live PO cone as a primitive-gate netlist."""
    netlist = Netlist(name=name if name is not None else aig.name)
    net_of: dict[int, str] = {}
    for var, pi_name in zip(aig.pi_vars(), aig.pi_names()):
        netlist.add_input(pi_name)
        net_of[var] = pi_name

    const_net: dict[int, str] = {}

    def const(value: int) -> str:
        if value not in const_net:
            net = f"const{value}"
            netlist.add_gate(
                net, GateType.CONST1 if value else GateType.CONST0, ()
            )
            const_net[value] = net
        return const_net[value]

    inverted: dict[str, str] = {}

    def lit_net(lit: int) -> str:
        """Net computing the literal, inserting NOT gates on demand."""
        var = lit_var(lit)
        if var == 0:
            return const(1 if lit & 1 else 0)
        base = net_of[var]
        if not lit & 1:
            return base
        if base not in inverted:
            inv = f"{base}_not"
            netlist.add_gate(inv, GateType.NOT, (base,))
            inverted[base] = inv
        return inverted[base]

    xor_operands: dict[int, tuple[int, int]] = {}
    absorbed: set[int] = set()
    order = aig.topological_ands(roots=aig.po_lits())
    if detect_xor:
        po_vars = {lit_var(po) for po in aig.po_lits()}
        for var in order:
            pattern = _xor_pattern(aig, var)
            if pattern is None:
                continue
            f0, f1 = aig.fanins(var)
            children = [lit_var(f0), lit_var(f1)]
            # Only absorb children used nowhere else and not POs themselves.
            if all(
                len(aig.fanout_vars(c)) == 1
                and aig.num_refs(c) == 1
                and c not in po_vars
                for c in children
            ):
                xor_operands[var] = pattern
                absorbed.update(children)

    for index, var in enumerate(order):
        if var in absorbed and var not in xor_operands:
            continue
        out_net = f"g{var}"
        if var in xor_operands:
            a, b = xor_operands[var]
            netlist.add_gate(out_net, GateType.XOR, (lit_net(a), lit_net(b)))
        else:
            f0, f1 = aig.fanins(var)
            if (f0 & 1) and (f1 & 1):
                # ~a & ~b = NOR(a, b)
                netlist.add_gate(
                    out_net,
                    GateType.NOR,
                    (lit_net(f0 ^ 1), lit_net(f1 ^ 1)),
                )
            else:
                netlist.add_gate(out_net, GateType.AND, (lit_net(f0), lit_net(f1)))
        net_of[var] = out_net

    for po_lit, po_name in zip(aig.po_lits(), aig.po_names()):
        var = lit_var(po_lit)
        if var == 0:
            source = const(1 if po_lit & 1 else 0)
            netlist.add_gate(po_name, GateType.BUF, (source,))
        else:
            source = net_of[var]
            gate_type = GateType.NOT if po_lit & 1 else GateType.BUF
            if po_name == source:
                po_name_net = po_name
                netlist.add_output(po_name_net)
                continue
            netlist.add_gate(po_name, gate_type, (source,))
        netlist.add_output(po_name)
    netlist.validate()
    return netlist
