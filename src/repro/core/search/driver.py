"""The generic batched search loop shared by every strategy.

``run_search`` owns what the seed annealer interleaved with its Metropolis
logic: evaluating candidates, recording the trace, and stopping.  With the
``sa`` strategy and a serial evaluator it reproduces the seed loop
bit-for-bit; with ``pt``/``beam``/``random`` and a batch or pool evaluator
the same loop becomes a parallel search engine.

The loop is strategy- and evaluator-agnostic: a deterministic toy problem
shows the accounting contract (``iterations`` counts observe rounds,
``energy_evaluations`` counts scored states, and both land in every trace
entry)::

    >>> from repro.core.search import SearchConfig, SearchProblem
    >>> problem = SearchProblem(initial=3.0, neighbour=lambda x, rng: x - 1.0)
    >>> result = run_search(problem, abs, strategy="sa",
    ...                     config=SearchConfig(iterations=3))
    >>> (result.best_energy, result.iterations, result.energy_evaluations)
    (0.0, 3, 4)
    >>> [entry["energy_evaluations"] for entry in result.trace]
    [1, 2, 3, 4]

Because evaluators are interchangeable, the exact same trace comes back
whether ``abs`` is called inline, batched, or shipped to a process pool —
that invariance (plus the synthesis cache's exact-resume contract) is what
lets ``--jobs`` fan out without perturbing paper-fidelity traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Optional, TypeVar, Union

from repro.core.search.evaluator import EnergyEvaluator, as_evaluator
from repro.obs import metrics as _metrics
from repro.obs.trace import get_tracer
from repro.core.search.strategy import (
    SearchConfig,
    SearchProblem,
    Strategy,
    make_strategy,
)

State = TypeVar("State")


@dataclass
class SaResult(Generic[State]):
    """Best state found plus the full search trace.

    ``iterations`` counts propose/observe rounds actually run;
    ``energy_evaluations`` counts states scored — the two diverge under
    ``stop_energy`` early exit and under batched strategies (one round of
    ``chains`` candidates is one iteration but many evaluations), so both
    are tracked and every trace entry carries the running
    ``energy_evaluations`` total.
    """

    best_state: State
    best_energy: float
    trace: list[dict] = field(default_factory=list)
    iterations: int = 0
    energy_evaluations: int = 0

    def energies(self) -> list[float]:
        return [entry["energy"] for entry in self.trace]

    def values(self, key: str) -> list:
        return [entry.get(key) for entry in self.trace]


def run_search(
    problem: SearchProblem,
    evaluator: Union[EnergyEvaluator, Callable],
    strategy: Union[str, Strategy] = "sa",
    config: Optional[SearchConfig] = None,
    trace_fn: Optional[Callable[[State, float], dict]] = None,
    stop_energy: Optional[float] = None,
) -> SaResult:
    """Minimize over ``problem`` with the named (or given) strategy.

    ``evaluator`` is an :class:`EnergyEvaluator` or a plain ``state ->
    float`` callable.  ``trace_fn(state, energy)`` may add extra fields to
    every trace entry (the Fig. 4 benches log predicted accuracy);
    ``stop_energy`` short-circuits once the best energy reaches it, and
    ``config.max_evaluations`` caps the total scoring budget.
    """
    config = config if config is not None else SearchConfig()
    evaluator = as_evaluator(evaluator)
    if isinstance(strategy, Strategy):
        engine = strategy
    else:
        engine = make_strategy(strategy, problem, config)

    trace: list[dict] = []
    evaluations = 0
    rounds = 0

    def absorb(rows) -> None:
        for entry, state in rows:
            entry["energy_evaluations"] = evaluations
            if trace_fn is not None:
                entry.update(trace_fn(state, entry["energy"]))
            trace.append(entry)

    tracer = get_tracer()
    states = engine.bootstrap()
    energies = evaluator.evaluate(states)
    evaluations += len(states)
    _metrics.inc("search.energy_evaluations", len(states))
    absorb(engine.start(states, energies))
    while True:
        if config.max_evaluations and evaluations >= config.max_evaluations:
            break
        batch = engine.propose()
        if not batch:
            break
        with tracer.span("search.round", round=rounds + 1) as span:
            energies = evaluator.evaluate(batch)
            evaluations += len(batch)
            rounds += 1
            _metrics.inc("search.rounds")
            _metrics.inc("search.energy_evaluations", len(batch))
            absorb(engine.observe(batch, energies))
            span.set(batch=len(batch), best_energy=engine.best_energy)
        # The stop check runs *after* each observed round, exactly like the
        # seed annealer (which always evaluated at least one neighbour even
        # when the initial state already satisfied stop_energy).
        if stop_energy is not None and engine.best_energy <= stop_energy:
            break
    return SaResult(
        best_state=engine.best_state,
        best_energy=engine.best_energy,
        trace=trace,
        iterations=rounds,
        energy_evaluations=evaluations,
    )
