"""IID random sampling — the baseline every smarter strategy must beat.

Draws ``chains`` independent states per round from the problem's sampler
and keeps the best seen.  On the same evaluation budget this is the
no-structure control for the strategy-comparison table.
"""

from __future__ import annotations

from repro.core.search.strategy import (
    SearchConfig,
    SearchProblem,
    Strategy,
    register_strategy,
)
from repro.utils.rng import make_rng


@register_strategy("random")
class RandomSearchStrategy(Strategy):
    """Uniform random sampling at batch size ``chains``."""

    def __init__(self, problem: SearchProblem, config: SearchConfig):
        super().__init__(problem, config)
        self.rng = make_rng(config.seed)
        self.round = 0

    def bootstrap(self) -> list:
        return [self.problem.initial] + [
            self.problem.sample_state(self.rng)
            for _ in range(self.config.chains - 1)
        ]

    def _rows(self, states, energies):
        rows = []
        for slot, (state, energy) in enumerate(zip(states, energies)):
            improved = energy < self.best_energy
            self._improve(state, energy)
            rows.append(
                (
                    {
                        "iteration": self.round,
                        "slot": slot,
                        "energy": float(energy),
                        "best_energy": self.best_energy,
                        "accepted": improved,
                    },
                    state,
                )
            )
        return rows

    def start(self, states, energies):
        return self._rows(states, energies)

    def propose(self) -> list:
        if self.round >= self.config.iterations:
            return []
        return [
            self.problem.sample_state(self.rng)
            for _ in range(self.config.chains)
        ]

    def observe(self, states, energies):
        self.round += 1
        return self._rows(states, energies)
