"""Annealing strategies: the paper's serial SA and parallel tempering.

:class:`SaStrategy` re-expresses the seed annealer as a batch-of-one
strategy.  Its RNG call pattern — one ``neighbour`` draw per iteration and
one ``rng.random()`` only when the move is uphill — is identical to the
seed loop, so the ``sa`` strategy with paper defaults reproduces the seed
trace bit-for-bit on a fixed seed (pinned by
``benchmarks/test_bench_search.py``).

:class:`ParallelTemperingStrategy` runs ``chains`` replicas on a geometric
temperature ladder, proposing one candidate per chain per round (a natural
evaluation batch) and periodically attempting replica swaps between
adjacent temperatures.  Each chain owns a derived RNG stream, so results
are deterministic per seed regardless of how the batch is evaluated.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.core.search.strategy import (
    SearchConfig,
    SearchProblem,
    Strategy,
    register_strategy,
)
from repro.utils.rng import derive_seed, make_rng


@register_strategy("sa")
class SaStrategy(Strategy):
    """Single-chain Metropolis annealing (seed-trace compatible)."""

    def __init__(self, problem: SearchProblem, config: SearchConfig):
        super().__init__(problem, config)
        self.rng = make_rng(config.seed)
        self.current = problem.initial
        self.current_energy = math.inf
        self.temperature = config.t_initial
        self.round = 0

    def _entry(self, iteration: int, energy: float, accepted: bool) -> dict:
        return {
            "iteration": iteration,
            "energy": energy,
            "best_energy": self.best_energy,
            "temperature": self.temperature,
            "accepted": accepted,
        }

    def bootstrap(self) -> list:
        return [self.current]

    def start(self, states, energies):
        self.current_energy = energies[0]
        self._improve(self.current, energies[0])
        return [(self._entry(0, self.current_energy, True), self.current)]

    def propose(self) -> list:
        if self.round >= self.config.iterations:
            return []
        return [self.problem.neighbour(self.current, self.rng)]

    def observe(self, states, energies):
        self.round += 1
        candidate, candidate_energy = states[0], energies[0]
        delta = candidate_energy - self.current_energy
        if delta <= 0:
            # Downhill moves never touch the RNG (seed stream compatible).
            accepted = True
        else:
            probability = metropolis_probability(
                delta, self.temperature, self.config.acceptance
            )
            accepted = bool(self.rng.random() < probability)
        if accepted:
            self.current = candidate
            self.current_energy = candidate_energy
            self._improve(candidate, candidate_energy)
        rows = [
            (self._entry(self.round, self.current_energy, accepted), self.current)
        ]
        self.temperature *= self.config.cooling
        return rows


@register_strategy("pt")
class ParallelTemperingStrategy(Strategy):
    """Multi-chain SA on a temperature ladder with replica exchange."""

    def __init__(self, problem: SearchProblem, config: SearchConfig):
        super().__init__(problem, config)
        chains = config.chains
        self.rngs = [
            make_rng(derive_seed(config.seed, "pt-chain", index))
            for index in range(chains)
        ]
        self.swap_rng = make_rng(derive_seed(config.seed, "pt-swap"))
        t_hot = config.t_hot if config.t_hot > 0 else config.t_initial * 8.0
        if chains == 1:
            self.temperatures = [config.t_initial]
        else:
            ratio = (t_hot / config.t_initial) ** (1.0 / (chains - 1))
            self.temperatures = [
                config.t_initial * ratio**index for index in range(chains)
            ]
        self.states = [problem.initial] + [
            problem.sample_state(self.rngs[index]) for index in range(1, chains)
        ]
        self.energies = [math.inf] * chains
        self.round = 0

    def _entry(
        self, chain: int, energy: float, accepted: bool, swapped: bool
    ) -> dict:
        return {
            "iteration": self.round,
            "chain": chain,
            "energy": energy,
            "best_energy": self.best_energy,
            "temperature": self.temperatures[chain],
            "accepted": accepted,
            "swapped": swapped,
        }

    def bootstrap(self) -> list:
        return list(self.states)

    def start(self, states, energies):
        self.energies = [float(e) for e in energies]
        for state, energy in zip(states, energies):
            self._improve(state, energy)
        return [
            (self._entry(chain, self.energies[chain], True, False), state)
            for chain, state in enumerate(self.states)
        ]

    def propose(self) -> list:
        if self.round >= self.config.iterations:
            return []
        return [
            self.problem.neighbour(self.states[chain], self.rngs[chain])
            for chain in range(self.config.chains)
        ]

    def observe(self, states, energies):
        self.round += 1
        accepted_flags = []
        for chain, (candidate, candidate_energy) in enumerate(
            zip(states, energies)
        ):
            delta = candidate_energy - self.energies[chain]
            if delta <= 0:
                accepted = True
            else:
                probability = metropolis_probability(
                    delta, self.temperatures[chain], self.config.acceptance
                )
                accepted = bool(self.rngs[chain].random() < probability)
            if accepted:
                self.states[chain] = candidate
                self.energies[chain] = candidate_energy
                self._improve(candidate, candidate_energy)
            accepted_flags.append(accepted)
        swapped_flags = [False] * self.config.chains
        if self.round % self.config.swap_period == 0:
            self._attempt_swaps(swapped_flags)
        rows = [
            (
                self._entry(
                    chain,
                    self.energies[chain],
                    accepted_flags[chain],
                    swapped_flags[chain],
                ),
                self.states[chain],
            )
            for chain in range(self.config.chains)
        ]
        self.temperatures = [
            t * self.config.cooling for t in self.temperatures
        ]
        return rows

    def _attempt_swaps(self, swapped_flags: list[bool]) -> None:
        """Replica exchange between adjacent ladder rungs.

        Alternates even/odd pairings between swap rounds so every adjacent
        pair gets a chance.  A swap moving the lower energy to the colder
        rung is always taken; the reverse is Metropolis-weighted by the
        inverse-temperature gap.
        """
        phase = (self.round // self.config.swap_period) % 2
        for cold in range(phase, self.config.chains - 1, 2):
            hot = cold + 1
            beta_cold = 1.0 / max(self.temperatures[cold], 1e-9)
            beta_hot = 1.0 / max(self.temperatures[hot], 1e-9)
            argument = (
                (beta_cold - beta_hot)
                * (self.energies[cold] - self.energies[hot])
                * self.config.acceptance
            )
            if self.swap_rng.random() < math.exp(min(argument, 0.0)):
                self.states[cold], self.states[hot] = (
                    self.states[hot],
                    self.states[cold],
                )
                self.energies[cold], self.energies[hot] = (
                    self.energies[hot],
                    self.energies[cold],
                )
                swapped_flags[cold] = swapped_flags[hot] = True


def metropolis_probability(
    delta: float, temperature: float, acceptance: float
) -> float:
    """The paper's acceptance rule ``exp(-dE * acceptance / T)`` (clamped)."""
    if delta <= 0:
        return 1.0
    return math.exp(-delta * acceptance / max(temperature, 1e-9))
