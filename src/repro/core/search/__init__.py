"""Batched, pluggable recipe-search engine.

The paper's Eq. 1 search — and every other black-box minimization in the
repo — runs through one driver (:func:`run_search`) that pairs a
:class:`Strategy` (proposes candidate batches, observes energies) with an
:class:`EnergyEvaluator` (scores batches serially, vectorized, or over a
process pool).  Built-in strategies:

* ``sa``     — the paper's serial simulated annealing (seed-trace exact);
* ``pt``     — multi-chain parallel tempering with replica swaps;
* ``beam``   — greedy beam search at width ``chains``;
* ``random`` — IID sampling baseline.

All four are looked up by name through the strategy registry, which CLI
flags, :class:`~repro.pipeline.spec.DefenseSpec` fields and strategy
sweeps resolve against::

    >>> sorted(set(available_strategies()) & {"sa", "pt", "beam", "random"})
    ['beam', 'pt', 'random', 'sa']

The search itself is one call — strategies are deterministic per seed, so
the same config always reproduces the same trace::

    >>> problem = SearchProblem(initial=4.0, neighbour=lambda x, rng: x - 1.0)
    >>> result = run_search(problem, abs, strategy="sa",
    ...                     config=SearchConfig(iterations=4))
    >>> (result.best_energy, result.energy_evaluations)
    (0.0, 5)

Recipe energies are usually scored through a prefix-cached synthesizer
(:mod:`repro.synth.cache`); because its snapshots resume exactly, the
trace above is identical whether or not (and wherever) a cache is
attached.  ``repro.core.sa.simulated_annealing`` remains as a thin
compatibility wrapper over this package.
"""

from repro.core.search.strategy import (
    SearchConfig,
    SearchProblem,
    Strategy,
    available_strategies,
    get_strategy,
    make_strategy,
    register_strategy,
)
from repro.core.search.driver import SaResult, run_search
from repro.core.search.evaluator import (
    BatchCallableEvaluator,
    CallableEvaluator,
    EnergyEvaluator,
    ProcessPoolEvaluator,
    as_evaluator,
)

# Importing the strategy modules populates the registry.
from repro.core.search import annealing as _annealing  # noqa: F401
from repro.core.search import beam as _beam  # noqa: F401
from repro.core.search import random_search as _random_search  # noqa: F401

__all__ = [
    "SearchConfig",
    "SearchProblem",
    "Strategy",
    "SaResult",
    "run_search",
    "register_strategy",
    "get_strategy",
    "make_strategy",
    "available_strategies",
    "EnergyEvaluator",
    "CallableEvaluator",
    "BatchCallableEvaluator",
    "ProcessPoolEvaluator",
    "as_evaluator",
]
