"""The batch-propose/observe strategy protocol and its registry.

A :class:`Strategy` drives a black-box minimization by *proposing a batch*
of candidate states and *observing* their energies; the driver
(:func:`repro.core.search.driver.run_search`) owns the evaluate loop, so
one strategy implementation works with serial, vectorized-batch, and
process-pool evaluators alike.  Strategies are registered by name
(``sa``, ``pt``, ``beam``, ``random``) so CLI flags and pipeline specs can
select them declaratively.  Every built-in derives its randomness from
``SearchConfig.seed`` alone, so a strategy's proposal stream — and hence
the whole search trace — is deterministic per seed under any evaluator
backend.  Plugins add themselves with :func:`register_strategy` and
duplicates are rejected outright::

    >>> get_strategy("sa").__name__
    'SaStrategy'
    >>> get_strategy("no-such-engine")
    Traceback (most recent call last):
        ...
    repro.errors.SearchError: unknown search strategy 'no-such-engine'; \
available: ['beam', 'pt', 'random', 'sa']

Config validation fails fast, before any scoring budget is spent::

    >>> SearchConfig(chains=0)
    Traceback (most recent call last):
        ...
    repro.errors.SearchError: chains must be >= 1, got 0
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.errors import SearchError


@dataclass
class SearchProblem:
    """What is being searched: a start state and how to move around it.

    ``neighbour(state, rng)`` is the local mutation (the SA neighbourhood
    move); ``sample(rng)`` optionally draws an independent state — used to
    seed extra chains/beam slots and by the ``random`` baseline.  Without
    ``sample``, independent draws fall back to mutating the initial state.
    """

    initial: Any
    neighbour: Callable[[Any, Any], Any]
    sample: Optional[Callable[[Any], Any]] = None

    def sample_state(self, rng) -> Any:
        if self.sample is not None:
            return self.sample(rng)
        return self.neighbour(self.initial, rng)


@dataclass
class SearchConfig:
    """Shared strategy knobs.

    The first five fields are the paper's annealing schedule (Sec. IV-C
    defaults, identical to the seed :class:`~repro.core.sa.SaConfig`);
    ``chains`` sizes the proposal batch (parallel-tempering chains, beam
    width, random-sampling batch), ``t_hot``/``swap_period`` parameterize
    the tempering ladder, and ``max_evaluations`` optionally caps the total
    energy-evaluation budget across strategies so different strategies can
    be compared fairly.
    """

    iterations: int = 100
    t_initial: float = 120.0
    acceptance: float = 1.8
    cooling: float = 0.95
    seed: int = 0
    chains: int = 1
    t_hot: float = 0.0          # parallel tempering ladder top (0 = 8x t_initial)
    swap_period: int = 5
    max_evaluations: int = 0    # 0 = unlimited

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise SearchError(
                f"iterations must be >= 0, got {self.iterations}"
            )
        if self.chains < 1:
            raise SearchError(f"chains must be >= 1, got {self.chains}")
        if self.swap_period < 1:
            raise SearchError(
                f"swap_period must be >= 1, got {self.swap_period}"
            )
        if self.max_evaluations < 0:
            raise SearchError(
                f"max_evaluations must be >= 0, got {self.max_evaluations}"
            )


class Strategy(ABC):
    """Batched search strategy protocol.

    Lifecycle: the driver evaluates :meth:`bootstrap`'s states, feeds the
    energies to :meth:`start`, then loops :meth:`propose` / :meth:`observe`
    until the batch comes back empty (budget spent) or an external stop
    fires.  ``start`` and ``observe`` return ``(trace_entry, state)`` pairs
    — one per chain/slot — so the driver can append caller extras
    (``trace_fn``) before recording.
    """

    def __init__(self, problem: SearchProblem, config: SearchConfig):
        self.problem = problem
        self.config = config
        self.best_state: Any = None
        self.best_energy: float = math.inf

    def _improve(self, state: Any, energy: float) -> None:
        if energy < self.best_energy:
            self.best_state = state
            self.best_energy = energy

    @abstractmethod
    def bootstrap(self) -> list:
        """States whose energies are needed before the first round."""

    @abstractmethod
    def start(
        self, states: Sequence, energies: Sequence[float]
    ) -> list[tuple[dict, Any]]:
        """Observe the bootstrap energies; returns iteration-0 trace rows."""

    @abstractmethod
    def propose(self) -> list:
        """Next candidate batch; empty list = strategy is finished."""

    @abstractmethod
    def observe(
        self, states: Sequence, energies: Sequence[float]
    ) -> list[tuple[dict, Any]]:
        """Digest the batch energies; returns this round's trace rows."""


# -- registry --------------------------------------------------------------

_REGISTRY: dict[str, Callable[[SearchProblem, SearchConfig], Strategy]] = {}


def register_strategy(name: str):
    """Class/factory decorator adding a strategy under ``name``.

    Duplicate names are rejected — a plugin silently shadowing ``sa``
    would corrupt every paper-fidelity trace downstream.
    """

    def decorator(factory):
        if name in _REGISTRY:
            raise SearchError(f"strategy {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    return decorator


def available_strategies() -> list[str]:
    return sorted(_REGISTRY)


def get_strategy(name: str):
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SearchError(
            f"unknown search strategy {name!r}; "
            f"available: {available_strategies()}"
        ) from None


def make_strategy(
    name: str, problem: SearchProblem, config: SearchConfig
) -> Strategy:
    return get_strategy(name)(problem, config)
