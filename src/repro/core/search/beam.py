"""Greedy beam search over recipe space.

Keeps the ``chains`` best states found so far; each round every beam slot
proposes one neighbour, the whole batch is evaluated at once, and the pool
of old beam plus new candidates is cut back to the best ``chains``.  Purely
exploitative — the high-variance counterpart to annealing on the same
evaluation budget.
"""

from __future__ import annotations

from repro.core.search.strategy import (
    SearchConfig,
    SearchProblem,
    Strategy,
    register_strategy,
)
from repro.utils.rng import make_rng


@register_strategy("beam")
class BeamStrategy(Strategy):
    """Width-``chains`` greedy beam driven by the neighbourhood move."""

    def __init__(self, problem: SearchProblem, config: SearchConfig):
        super().__init__(problem, config)
        self.rng = make_rng(config.seed)
        self.beam = [problem.initial] + [
            problem.sample_state(self.rng) for _ in range(config.chains - 1)
        ]
        self.beam_energies: list[float] = []
        self.round = 0

    def _rows(self, accepted_flags):
        return [
            (
                {
                    "iteration": self.round,
                    "slot": slot,
                    "energy": self.beam_energies[slot],
                    "best_energy": self.best_energy,
                    "accepted": accepted_flags[slot],
                },
                self.beam[slot],
            )
            for slot in range(len(self.beam))
        ]

    def bootstrap(self) -> list:
        return list(self.beam)

    def start(self, states, energies):
        self.beam_energies = [float(e) for e in energies]
        for state, energy in zip(states, energies):
            self._improve(state, energy)
        self._sort_beam()
        return self._rows([True] * len(self.beam))

    def _sort_beam(self) -> None:
        # Stable order: energy first, then current position — deterministic
        # under ties without requiring states to be comparable.
        order = sorted(
            range(len(self.beam)), key=lambda i: (self.beam_energies[i], i)
        )
        self.beam = [self.beam[i] for i in order]
        self.beam_energies = [self.beam_energies[i] for i in order]

    def propose(self) -> list:
        if self.round >= self.config.iterations:
            return []
        return [self.problem.neighbour(state, self.rng) for state in self.beam]

    def observe(self, states, energies):
        self.round += 1
        pool = list(zip(self.beam, self.beam_energies, [False] * len(self.beam)))
        pool += [
            (state, float(energy), True)
            for state, energy in zip(states, energies)
        ]
        order = sorted(range(len(pool)), key=lambda i: (pool[i][1], i))
        keep = order[: self.config.chains]
        self.beam = [pool[i][0] for i in keep]
        self.beam_energies = [pool[i][1] for i in keep]
        accepted_flags = [pool[i][2] for i in keep]
        for state, energy in zip(self.beam, self.beam_energies):
            self._improve(state, energy)
        return self._rows(accepted_flags)
