"""Energy evaluators: serial, vectorized-batch, and process-pool.

The driver hands a whole candidate batch to one of these; how the batch is
scored — a Python loop, one vectorized model pass, or fan-out over a
worker pool — is invisible to the strategies, which keeps multi-chain
searches deterministic per seed regardless of the execution backend.

The serial evaluators wrap plain callables::

    >>> CallableEvaluator(lambda state: state * 2.0).evaluate([1, 2])
    [2.0, 4.0]
    >>> BatchCallableEvaluator(lambda batch: [s + 1 for s in batch]).evaluate([1])
    [2.0]

:class:`ProcessPoolEvaluator` fans batches out over a persistent
``multiprocessing`` pool.  The scorer ships once per worker; worker-side
state it carries (memo tables, recipe-prefix synthesis caches) persists
across batches.  A *private* :class:`~repro.synth.cache.SynthCache` on the
scorer is duplicated per worker — each starts cold — so scorers that want
the serial path's hit rate under fan-out carry a
:class:`~repro.synth.cache.SharedSynthCache` instead and hand the same
handle to the evaluator's ``shared_cache`` parameter, which keeps its
aggregated hit/miss totals parent-visible (``cache_stats()``) after the
pool is torn down and shuts the store down on :meth:`close`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import SearchError
from repro.obs.trace import get_tracer, set_tracer


class EnergyEvaluator:
    """Base protocol: score a batch of states, release resources on close."""

    def evaluate(self, states: Sequence) -> list[float]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any backing resources (worker pools); idempotent."""

    def __enter__(self) -> "EnergyEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CallableEvaluator(EnergyEvaluator):
    """Scores states one by one through a plain ``state -> float`` callable."""

    def __init__(self, fn: Callable):
        self.fn = fn

    def evaluate(self, states: Sequence) -> list[float]:
        return [float(self.fn(state)) for state in states]


class BatchCallableEvaluator(EnergyEvaluator):
    """Scores the whole batch through one ``list[state] -> list[float]`` call.

    The hook for vectorized scorers such as
    :meth:`repro.core.proxy.ProxyModel.predicted_accuracy_batch`, which
    packs every candidate's GNN localities into a single forward pass.
    """

    def __init__(self, batch_fn: Callable):
        self.batch_fn = batch_fn

    def evaluate(self, states: Sequence) -> list[float]:
        states = list(states)
        values = list(self.batch_fn(states))
        if len(values) != len(states):
            raise SearchError(
                f"batch evaluator returned {len(values)} energies for "
                f"{len(states)} states"
            )
        return [float(value) for value in values]


# A worker process holds the scoring callable in a module global: the
# callable (often a whole trained proxy model) ships once per worker via
# the pool initializer instead of once per task.
_WORKER_FN = None


def _pool_initializer(fn, tracer_handle=None) -> None:
    global _WORKER_FN
    _WORKER_FN = fn
    if tracer_handle is not None:
        # Worker spans/metrics flow back through the handle's queue; the
        # parent folds them in with drain() at pool teardown.
        set_tracer(tracer_handle)


def _pool_call(state) -> float:
    # The span both times the scoring call and carries the worker-local
    # metric deltas (synth-cache traffic, solver effort) back to the parent
    # — without it a worker's counters would die with the pool.
    with get_tracer().span("search.eval"):
        return float(_WORKER_FN(state))


class ProcessPoolEvaluator(EnergyEvaluator):
    """Fans a candidate batch out over a persistent ``multiprocessing`` pool.

    ``fn`` must be picklable — it is shipped to each worker exactly once.
    Worker-side state (memo tables, recipe-prefix synthesis caches) then
    persists across batches.  ``chunksize=1`` spreads a small batch across
    all workers instead of lumping it onto one.

    ``shared_cache`` optionally hands over ownership of the
    :class:`~repro.synth.cache.SharedSynthCache` the scorer synthesizes
    through: its cross-worker hit/miss totals stay readable via
    :meth:`cache_stats` (frozen at :meth:`close`, which also shuts the
    shared store down after the workers exit).  Without it, worker-private
    cache counters die with the pool.
    """

    def __init__(self, fn: Callable, jobs: int, shared_cache=None):
        if jobs < 1:
            raise SearchError(f"jobs must be >= 1, got {jobs}")
        import multiprocessing

        self.jobs = jobs
        self.shared_cache = shared_cache
        self._pool = multiprocessing.Pool(
            processes=jobs,
            initializer=_pool_initializer,
            initargs=(fn, get_tracer().worker_handle()),
        )

    def evaluate(self, states: Sequence) -> list[float]:
        states = list(states)
        if not states:
            return []
        try:
            return self._pool.map(_pool_call, states, chunksize=1)
        except KeyboardInterrupt:
            # Ctrl-C mid-batch: tear the workers down hard (close/join
            # would wait on the very tasks the user just aborted), then
            # let the interrupt keep unwinding to the partial-result
            # handling in the driver / Runner.
            self.terminate()
            raise

    def terminate(self) -> None:
        """Kill the pool without waiting for in-flight tasks; idempotent."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            get_tracer().drain()
        if self.shared_cache is not None:
            self.shared_cache.close()

    def cache_stats(self) -> dict:
        """Aggregated synthesis-cache stats across all pool workers.

        Empty when no shared cache was attached (worker-private counters
        are unreachable from the parent).
        """
        if self.shared_cache is None:
            return {}
        return self.shared_cache.stats()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            # Workers have exited; fold their queued telemetry into the
            # parent's stream.
            get_tracer().drain()
        if self.shared_cache is not None:
            # Freeze the final aggregated stats, then stop the store's
            # manager server — the workers that fed it are gone.
            self.shared_cache.close()


def as_evaluator(obj) -> EnergyEvaluator:
    """Coerce a callable into an evaluator; pass evaluators through."""
    if isinstance(obj, EnergyEvaluator):
        return obj
    if callable(obj):
        return CallableEvaluator(obj)
    raise SearchError(
        f"expected an EnergyEvaluator or callable, got {type(obj).__name__}"
    )
