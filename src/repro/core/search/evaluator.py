"""Energy evaluators: serial, vectorized-batch, and process-pool.

The driver hands a whole candidate batch to one of these; how the batch is
scored — a Python loop, one vectorized model pass, or fan-out over a
worker pool — is invisible to the strategies, which keeps multi-chain
searches deterministic per seed regardless of the execution backend.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import SearchError


class EnergyEvaluator:
    """Base protocol: score a batch of states, release resources on close."""

    def evaluate(self, states: Sequence) -> list[float]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any backing resources (worker pools); idempotent."""

    def __enter__(self) -> "EnergyEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CallableEvaluator(EnergyEvaluator):
    """Scores states one by one through a plain ``state -> float`` callable."""

    def __init__(self, fn: Callable):
        self.fn = fn

    def evaluate(self, states: Sequence) -> list[float]:
        return [float(self.fn(state)) for state in states]


class BatchCallableEvaluator(EnergyEvaluator):
    """Scores the whole batch through one ``list[state] -> list[float]`` call.

    The hook for vectorized scorers such as
    :meth:`repro.core.proxy.ProxyModel.predicted_accuracy_batch`, which
    packs every candidate's GNN localities into a single forward pass.
    """

    def __init__(self, batch_fn: Callable):
        self.batch_fn = batch_fn

    def evaluate(self, states: Sequence) -> list[float]:
        states = list(states)
        values = list(self.batch_fn(states))
        if len(values) != len(states):
            raise SearchError(
                f"batch evaluator returned {len(values)} energies for "
                f"{len(states)} states"
            )
        return [float(value) for value in values]


# A worker process holds the scoring callable in a module global: the
# callable (often a whole trained proxy model) ships once per worker via
# the pool initializer instead of once per task.
_WORKER_FN = None


def _pool_initializer(fn) -> None:
    global _WORKER_FN
    _WORKER_FN = fn


def _pool_call(state) -> float:
    return float(_WORKER_FN(state))


class ProcessPoolEvaluator(EnergyEvaluator):
    """Fans a candidate batch out over a persistent ``multiprocessing`` pool.

    ``fn`` must be picklable — it is shipped to each worker exactly once.
    Worker-side state (memo tables, recipe-prefix synthesis caches) then
    persists across batches, so the pool keeps the prefix-cache wins of the
    serial path.  ``chunksize=1`` spreads a small batch across all workers
    instead of lumping it onto one.
    """

    def __init__(self, fn: Callable, jobs: int):
        if jobs < 1:
            raise SearchError(f"jobs must be >= 1, got {jobs}")
        import multiprocessing

        self.jobs = jobs
        self._pool = multiprocessing.Pool(
            processes=jobs, initializer=_pool_initializer, initargs=(fn,)
        )

    def evaluate(self, states: Sequence) -> list[float]:
        states = list(states)
        if not states:
            return []
        return self._pool.map(_pool_call, states, chunksize=1)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None


def as_evaluator(obj) -> EnergyEvaluator:
    """Coerce a callable into an evaluator; pass evaluators through."""
    if isinstance(obj, EnergyEvaluator):
        return obj
    if callable(obj):
        return CallableEvaluator(obj)
    raise SearchError(
        f"expected an EnergyEvaluator or callable, got {type(obj).__name__}"
    )
