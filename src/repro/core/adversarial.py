"""Adversarial attack-model training — the paper's Algorithm 1.

``M*`` is trained like ``M_random`` but, every ``period`` epochs, a short
simulated-annealing run searches the recipe space for an *adversarial
recipe* ``S_adv`` on which the current model mispredicts the most (maximum
loss, Eq. 3); fresh relock localities synthesized with ``S_adv`` are then
appended to the training pool (the min-max objective of Eq. 6).  The result
is a proxy that stays accurate across the whole recipe space rather than
near one recipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.attacks.omla import OmlaAttack, OmlaConfig
from repro.core.proxy import ProxyConfig, ProxyModel, _omla_config
from repro.core.search import SearchConfig, SearchProblem, run_search
from repro.locking.relock import relock
from repro.locking.rll import LockedCircuit
from repro.ml.data import GraphData, pack_graphs
from repro.ml.train import TrainConfig, train_classifier
from repro.attacks.subgraph import extract_localities
from repro.synth.cache import SynthCache
from repro.synth.engine import synthesize_and_map
from repro.synth.recipe import TRANSFORM_NAMES, Recipe, random_recipe
from repro.utils.rng import derive_seed, make_rng


@dataclass
class AdversarialConfig:
    """Algorithm 1 knobs (scaled-down versions of the paper's values).

    ``cache_entries`` bounds the per-(relock seed, prefix) synthesis cache
    shared by a training run's inner SA rounds and ``augment_samples``
    top-up loops; 0 disables caching (the pre-cache behaviour).
    """

    period: int = 10                # paper R = 50
    augment_samples: int = 40       # paper: 200 per SA round
    sa_iterations: int = 8          # inner SA budget per round
    sa_t_initial: float = 120.0
    sa_acceptance: float = 1.8
    max_rounds: int = 3
    cache_entries: int = 256


def _adversarial_energy(
    attack: OmlaAttack,
    locked: LockedCircuit,
    recipe: Recipe,
    relock_bits: int,
    seed: int,
    cache=None,
) -> tuple[float, list[GraphData]]:
    """Model accuracy on fresh relock localities under ``recipe``.

    Lower accuracy = higher loss = better adversarial sample source, so SA
    minimizes this value directly (Eq. 3's argmax of loss).  ``cache`` is a
    recipe-prefix :class:`~repro.synth.cache.SynthCache`; the relocked
    circuit's fingerprint keys it, so entries are effectively
    per-(relock seed, recipe prefix) and a re-evaluated recipe — the SA
    revisiting a state, or a top-up resynthesizing ``S_adv`` — resumes
    from the snapshot instead of rerunning the whole recipe.  Snapshots
    are exact, so the localities (and hence ``M*``) are bit-identical to
    the uncached computation.
    """
    relocked = relock(locked.netlist, key_size=relock_bits, seed=seed)
    _netlist, mapped = synthesize_and_map(relocked.netlist, recipe, cache=cache)
    graphs = extract_localities(
        mapped,
        relocked.key_input_names,
        relocked.key.bits,
        hops=attack.config.hops,
        max_nodes=attack.config.max_nodes,
    )
    batch = pack_graphs(graphs)
    predictions = attack.model.predict(batch)
    accuracy = float((predictions == batch.labels).mean())
    return accuracy, graphs


def train_adversarial_attack(
    locked: LockedCircuit,
    config: Optional[ProxyConfig] = None,
    adv_config: Optional[AdversarialConfig] = None,
) -> ProxyModel:
    """Train ``M*`` per Algorithm 1 and wrap it as a proxy model."""
    config = config if config is not None else ProxyConfig()
    adv_config = adv_config if adv_config is not None else AdversarialConfig()
    attack = OmlaAttack(
        recipe=random_recipe(
            config.recipe_length, seed=derive_seed(config.seed, "adv-base")
        ),
        config=_omla_config(config, "adversarial"),
    )
    # Step 1-2 of Algorithm 1: initial pool from random length-10 recipes.
    initial_recipes = [
        random_recipe(
            config.recipe_length, seed=derive_seed(config.seed, "adv-recipe", i)
        )
        for i in range(config.num_random_recipes)
    ]
    initial_data = attack.generate_training_data(
        locked.netlist,
        num_samples=config.num_samples,
        recipes=initial_recipes,
        seed=derive_seed(config.seed, "adv-data"),
    )
    rng = make_rng(derive_seed(config.seed, "adv-sa"))
    rounds_done = 0
    # One bounded prefix cache across every adversarial round: keys carry
    # the relocked circuit's fingerprint, so each (relock seed, prefix)
    # pair gets its own snapshot chain and the top-up loop's repeated
    # S_adv synthesis resumes instead of starting from scratch.
    synth_cache = (
        SynthCache(max_entries=adv_config.cache_entries)
        if adv_config.cache_entries
        else None
    )

    def extra_graphs_provider(epoch: int) -> list[GraphData]:
        nonlocal rounds_done
        if (
            epoch == 0
            or epoch % adv_config.period != 0
            or rounds_done >= adv_config.max_rounds
            or attack.model is None
        ):
            return []
        rounds_done += 1
        round_seed = derive_seed(config.seed, "adv-round", rounds_done)
        collected: dict[tuple[str, ...], list[GraphData]] = {}

        def energy(recipe: Recipe) -> float:
            accuracy, graphs = _adversarial_energy(
                attack,
                locked,
                recipe,
                config.relock_key_bits,
                # recipe.short() kept as the relock-seed tag so the derived
                # streams (and therefore M*) match the seed trainer exactly.
                seed=derive_seed(round_seed, recipe.short()),
                cache=synth_cache,
            )
            collected[recipe.steps] = graphs
            return accuracy

        def neighbour(recipe: Recipe, sa_rng) -> Recipe:
            position = int(sa_rng.integers(len(recipe)))
            step = TRANSFORM_NAMES[int(sa_rng.integers(len(TRANSFORM_NAMES)))]
            return recipe.with_step(position, step)

        start = random_recipe(
            config.recipe_length, seed=derive_seed(round_seed, "start")
        )
        result = run_search(
            SearchProblem(initial=start, neighbour=neighbour),
            energy,
            strategy="sa",
            config=SearchConfig(
                iterations=adv_config.sa_iterations,
                t_initial=adv_config.sa_t_initial,
                acceptance=adv_config.sa_acceptance,
                seed=derive_seed(round_seed, "sa"),
            ),
        )
        adversarial_recipe = result.best_state
        graphs = collected.get(adversarial_recipe.steps, [])
        # Top up to the augmentation budget with fresh relocks of S_adv.
        top_up = 0
        while len(graphs) < adv_config.augment_samples:
            top_up += 1
            _acc, more = _adversarial_energy(
                attack,
                locked,
                adversarial_recipe,
                config.relock_key_bits,
                seed=derive_seed(round_seed, "topup", top_up),
                cache=synth_cache,
            )
            graphs = graphs + more
        return graphs[: adv_config.augment_samples]

    # Build the model, then train with periodic augmentation (steps 3-9).
    attack.train(initial_data, extra_graphs_provider=extra_graphs_provider)
    return ProxyModel(name="M*", attack=attack, locked=locked)
