"""The ALMOST defense: search-driven security-aware recipe generation.

Solves Eq. 1: ``argmin_S |Acc(M, G(AIG, S)) - 0.5|`` over fixed-length
recipes, using a proxy model (ideally the adversarially trained ``M*``) as
the accuracy evaluator.  The search runs through the pluggable engine in
:mod:`repro.core.search` — the paper's serial SA by default (seed-trace
exact), or parallel tempering / beam / random sampling via
``AlmostConfig.strategy`` — with candidate batches scored in one vectorized
proxy pass and optionally fanned out over a process pool
(``AlmostConfig.jobs``).  The search trace is retained so the Fig. 4
benches can re-plot accuracy vs. iteration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.proxy import ProxyModel
from repro.core.search import (
    EnergyEvaluator,
    ProcessPoolEvaluator,
    SearchConfig,
    SearchProblem,
    run_search,
)
from repro.locking.rll import LockedCircuit
from repro.synth.cache import SharedSynthCache
from repro.synth.engine import synthesize_and_map
from repro.synth.recipe import TRANSFORM_NAMES, Recipe, random_recipe
from repro.utils.rng import derive_seed


@dataclass
class AlmostConfig:
    """Recipe-search parameters (paper Sec. IV-C).

    ``strategy`` selects the search engine (``sa`` | ``pt`` | ``beam`` |
    ``random``), ``chains`` sizes its candidate batch (tempering chains,
    beam width, sampling batch) and ``jobs`` > 1 fans candidate scoring out
    over a process pool.  The paper's setup is the default: serial ``sa``
    with a single chain.
    """

    recipe_length: int = 10
    sa_iterations: int = 100
    sa_t_initial: float = 120.0
    sa_acceptance: float = 1.8
    target_accuracy: float = 0.5
    stop_margin: float = 0.005     # stop when |acc - 0.5| <= margin
    seed: int = 0
    strategy: str = "sa"
    chains: int = 1
    jobs: int = 1


@dataclass
class AlmostResult:
    """Output of one ALMOST run.

    ``synth_cache`` carries the recipe-prefix synthesis-cache stats of the
    run — for ``jobs`` > 1 these are the *aggregated cross-worker* totals
    read from the :class:`~repro.synth.cache.SharedSynthCache` (they used
    to be lost when the worker pool was torn down).
    """

    recipe: Recipe
    predicted_accuracy: float
    trace: list[dict] = field(default_factory=list)
    strategy: str = "sa"
    iterations: int = 0
    energy_evaluations: int = 0
    synth_cache: dict = field(default_factory=dict)

    def accuracy_trace(self) -> list[float]:
        """Per-iteration predicted accuracy of the current recipe."""
        return [entry["accuracy"] for entry in self.trace]


def _mutate_step(recipe: Recipe, rng) -> Recipe:
    """The SA neighbourhood move: substitute one recipe step."""
    position = int(rng.integers(len(recipe)))
    step = TRANSFORM_NAMES[int(rng.integers(len(TRANSFORM_NAMES)))]
    return recipe.with_step(position, step)


class _AccuracyEnergyEvaluator(EnergyEvaluator):
    """Adapts an accuracy scorer to Eq. 1 energies, recording accuracies.

    ``accuracy_batch`` maps a recipe batch to predicted accuracies; the
    observed values land in ``accuracy_of`` (keyed on the full step tuple)
    for the trace and the final result.  ``synth_cache`` is whichever
    recipe-prefix cache the scorer synthesizes through (the proxy's own,
    or the cross-worker shared store under ``jobs`` > 1) so the run's
    cache accounting can be read back — **before** :meth:`close`, which
    tears the worker pool and the shared store down.
    """

    def __init__(
        self,
        accuracy_batch: Callable,
        target: float,
        accuracy_of: dict,
        inner: Optional[EnergyEvaluator] = None,
        synth_cache=None,
    ):
        self.accuracy_batch = accuracy_batch
        self.target = target
        self.accuracy_of = accuracy_of
        self._inner = inner
        self.synth_cache = synth_cache

    def evaluate(self, recipes) -> list[float]:
        recipes = list(recipes)
        accuracies = [float(a) for a in self.accuracy_batch(recipes)]
        for recipe, accuracy in zip(recipes, accuracies):
            self.accuracy_of[recipe.steps] = accuracy
        return [abs(accuracy - self.target) for accuracy in accuracies]

    def cache_stats(self) -> dict:
        """Prefix-cache accounting for this run (cross-worker aggregated)."""
        if self.synth_cache is None:
            return {}
        return self.synth_cache.stats()

    def close(self) -> None:
        if self._inner is not None:
            self._inner.close()
        elif self.synth_cache is not None and hasattr(
            self.synth_cache, "close"
        ):
            self.synth_cache.close()


class AlmostDefense:
    """Security-aware recipe generator bound to one accuracy evaluator.

    ``evaluator`` is either a trained :class:`ProxyModel` or any callable
    ``recipe -> predicted accuracy`` (benches use callables to compare
    ``M_resyn2`` / ``M_random`` / ``M*`` evaluators on the same search).
    Proxy models are scored batch-at-a-time through
    :meth:`~repro.core.proxy.ProxyModel.predicted_accuracy_batch`; with
    ``config.jobs`` > 1 the scorer (which must be picklable) is shipped to
    a worker pool instead and candidates fan out across processes, all
    synthesizing through one :class:`~repro.synth.cache.SharedSynthCache`
    so fan-out keeps the serial path's prefix-hit rate and the aggregated
    cache stats stay parent-visible in ``AlmostResult.synth_cache``.
    """

    def __init__(
        self,
        evaluator,
        config: Optional[AlmostConfig] = None,
    ):
        self.config = config if config is not None else AlmostConfig()
        if isinstance(evaluator, ProxyModel):
            self._proxy: Optional[ProxyModel] = evaluator
            self._evaluate: Callable[[Recipe], float] = (
                evaluator.predicted_accuracy
            )
            self.evaluator_name = evaluator.name
        else:
            self._proxy = None
            self._evaluate = evaluator
            self.evaluator_name = getattr(evaluator, "__name__", "custom")

    def _make_evaluator(self, accuracy_of: dict) -> _AccuracyEnergyEvaluator:
        config = self.config
        if config.jobs > 1 and self._can_fork_workers():
            scorer = self._evaluate
            shared = None
            if self._proxy is not None and self._proxy.synth_cache is not None:
                # One snapshot store for every worker: a pickled-per-worker
                # private SynthCache would start cold in each process and
                # forfeit exactly the prefix hits that make fan-out pay.
                shared = SharedSynthCache(
                    max_entries=self._proxy.synth_cache.max_entries
                )
                worker_proxy = dataclasses.replace(
                    self._proxy, synth_cache=shared
                )
                scorer = worker_proxy.predicted_accuracy
            try:
                pool = ProcessPoolEvaluator(
                    scorer, jobs=config.jobs, shared_cache=shared
                )
            except BaseException:
                # Pool construction failed (fork/fd limits): shut the
                # store's manager server down or its process leaks.
                if shared is not None:
                    shared.close()
                raise
            return _AccuracyEnergyEvaluator(
                pool.evaluate,
                config.target_accuracy,
                accuracy_of,
                inner=pool,
                synth_cache=shared,
            )
        if self._proxy is not None:
            return _AccuracyEnergyEvaluator(
                self._proxy.predicted_accuracy_batch,
                config.target_accuracy,
                accuracy_of,
                synth_cache=self._proxy.synth_cache,
            )
        return _AccuracyEnergyEvaluator(
            lambda recipes: [self._evaluate(r) for r in recipes],
            config.target_accuracy,
            accuracy_of,
        )

    @staticmethod
    def _can_fork_workers() -> bool:
        """False inside a daemonic pool worker (e.g. a grid cell running
        under ``Runner(jobs > 1)``), where nested pools are forbidden —
        scoring then falls back to the serial batch path."""
        import multiprocessing

        return not multiprocessing.current_process().daemon

    def generate_recipe(self, initial: Optional[Recipe] = None) -> AlmostResult:
        """Run the recipe search; returns the best recipe found and the trace."""
        config = self.config
        start = (
            initial
            if initial is not None
            else random_recipe(
                config.recipe_length, seed=derive_seed(config.seed, "start")
            )
        )
        accuracy_of: dict[tuple[str, ...], float] = {}

        def trace_fn(recipe: Recipe, energy_value: float) -> dict:
            return {
                "accuracy": accuracy_of.get(recipe.steps),
                "recipe": recipe.short(),
            }

        problem = SearchProblem(
            initial=start,
            neighbour=_mutate_step,
            sample=lambda rng: random_recipe(config.recipe_length, rng=rng),
        )
        evaluator = self._make_evaluator(accuracy_of)
        try:
            result = run_search(
                problem,
                evaluator,
                strategy=config.strategy,
                config=SearchConfig(
                    iterations=config.sa_iterations,
                    t_initial=config.sa_t_initial,
                    acceptance=config.sa_acceptance,
                    seed=derive_seed(config.seed, "sa"),
                    chains=config.chains,
                ),
                trace_fn=trace_fn,
                stop_energy=config.stop_margin,
            )
        finally:
            # close() tears the pool down and freezes the shared store's
            # final cross-worker totals, so cache_stats() below still sees
            # them (pre-fix, they died with the workers).
            evaluator.close()
        best_recipe = result.best_state
        return AlmostResult(
            recipe=best_recipe,
            predicted_accuracy=accuracy_of[best_recipe.steps],
            trace=result.trace,
            strategy=config.strategy,
            iterations=result.iterations,
            energy_evaluations=result.energy_evaluations,
            synth_cache=evaluator.cache_stats(),
        )


def defend(
    locked: LockedCircuit,
    proxy: ProxyModel,
    config: Optional[AlmostConfig] = None,
):
    """End-to-end convenience: search a recipe, synthesize, and return all.

    Returns ``(AlmostResult, synthesized netlist, mapped circuit)`` — the
    artifacts a defender would tape out and the attacks evaluate.
    """
    defense = AlmostDefense(proxy, config)
    result = defense.generate_recipe()
    netlist, mapped = synthesize_and_map(locked.netlist, result.recipe)
    return result, netlist, mapped
