"""The ALMOST defense: SA-driven security-aware recipe generation.

Solves Eq. 1: ``argmin_S |Acc(M, G(AIG, S)) - 0.5|`` with simulated
annealing over fixed-length recipes, using a proxy model (ideally the
adversarially trained ``M*``) as the accuracy evaluator.  The search trace
is retained so the Fig. 4 benches can re-plot accuracy vs. iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.proxy import ProxyModel
from repro.core.sa import SaConfig, SaResult, simulated_annealing
from repro.locking.rll import LockedCircuit
from repro.synth.engine import synthesize_and_map
from repro.synth.recipe import TRANSFORM_NAMES, Recipe, random_recipe
from repro.utils.rng import derive_seed


@dataclass
class AlmostConfig:
    """Recipe-search parameters (paper Sec. IV-C)."""

    recipe_length: int = 10
    sa_iterations: int = 100
    sa_t_initial: float = 120.0
    sa_acceptance: float = 1.8
    target_accuracy: float = 0.5
    stop_margin: float = 0.005     # stop when |acc - 0.5| <= margin
    seed: int = 0


@dataclass
class AlmostResult:
    """Output of one ALMOST run."""

    recipe: Recipe
    predicted_accuracy: float
    trace: list[dict] = field(default_factory=list)

    def accuracy_trace(self) -> list[float]:
        """Per-iteration predicted accuracy of the current recipe."""
        return [entry["accuracy"] for entry in self.trace]


class AlmostDefense:
    """Security-aware recipe generator bound to one accuracy evaluator.

    ``evaluator`` is either a trained :class:`ProxyModel` or any callable
    ``recipe -> predicted accuracy`` (benches use callables to compare
    ``M_resyn2`` / ``M_random`` / ``M*`` evaluators on the same search).
    """

    def __init__(
        self,
        evaluator,
        config: Optional[AlmostConfig] = None,
    ):
        self.config = config if config is not None else AlmostConfig()
        if isinstance(evaluator, ProxyModel):
            self._evaluate: Callable[[Recipe], float] = evaluator.predicted_accuracy
            self.evaluator_name = evaluator.name
        else:
            self._evaluate = evaluator
            self.evaluator_name = getattr(evaluator, "__name__", "custom")

    def generate_recipe(self, initial: Optional[Recipe] = None) -> AlmostResult:
        """Run the SA search; returns the best recipe found and the trace."""
        config = self.config
        start = (
            initial
            if initial is not None
            else random_recipe(
                config.recipe_length, seed=derive_seed(config.seed, "start")
            )
        )
        accuracy_of: dict[str, float] = {}

        def energy(recipe: Recipe) -> float:
            accuracy = self._evaluate(recipe)
            accuracy_of[recipe.short()] = accuracy
            return abs(accuracy - config.target_accuracy)

        def neighbour(recipe: Recipe, rng) -> Recipe:
            position = int(rng.integers(len(recipe)))
            step = TRANSFORM_NAMES[int(rng.integers(len(TRANSFORM_NAMES)))]
            return recipe.with_step(position, step)

        def trace_fn(recipe: Recipe, energy_value: float) -> dict:
            return {
                "accuracy": accuracy_of.get(recipe.short()),
                "recipe": recipe.short(),
            }

        result: SaResult[Recipe] = simulated_annealing(
            start,
            energy,
            neighbour,
            SaConfig(
                iterations=config.sa_iterations,
                t_initial=config.sa_t_initial,
                acceptance=config.sa_acceptance,
                seed=derive_seed(config.seed, "sa"),
            ),
            trace_fn=trace_fn,
            stop_energy=config.stop_margin,
        )
        best_recipe = result.best_state
        return AlmostResult(
            recipe=best_recipe,
            predicted_accuracy=accuracy_of[best_recipe.short()],
            trace=result.trace,
        )


def defend(
    locked: LockedCircuit,
    proxy: ProxyModel,
    config: Optional[AlmostConfig] = None,
):
    """End-to-end convenience: search a recipe, synthesize, and return all.

    Returns ``(AlmostResult, synthesized netlist, mapped circuit)`` — the
    artifacts a defender would tape out and the attacks evaluate.
    """
    defense = AlmostDefense(proxy, config)
    result = defense.generate_recipe()
    netlist, mapped = synthesize_and_map(locked.netlist, result.recipe)
    return result, netlist, mapped
