"""Generic simulated annealing (the paper's black-box optimizer).

Matches the paper's setup: 100 iterations, initial temperature 120, an
``acceptance`` scale of 1.8 inside the Metropolis criterion
``P(accept worse) = exp(-dE * acceptance / T)``, and geometric cooling.

Since the search-engine refactor this module is a thin compatibility
wrapper: the actual loop lives in :mod:`repro.core.search` (the ``sa``
strategy driven by :func:`repro.core.search.run_search`), which reproduces
the seed annealer's trace bit-for-bit on a fixed seed while also offering
parallel-tempering / beam / random strategies and batched evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.core.search import SearchConfig, SearchProblem, run_search
from repro.core.search.driver import SaResult

State = TypeVar("State")

__all__ = ["SaConfig", "SaResult", "simulated_annealing"]


@dataclass
class SaConfig:
    """Annealing schedule parameters (paper Sec. IV-C defaults)."""

    iterations: int = 100
    t_initial: float = 120.0
    acceptance: float = 1.8
    cooling: float = 0.95
    seed: int = 0

    def to_search_config(self, **overrides) -> SearchConfig:
        """The equivalent engine config (chains/budget via ``overrides``)."""
        base = dict(
            iterations=self.iterations,
            t_initial=self.t_initial,
            acceptance=self.acceptance,
            cooling=self.cooling,
            seed=self.seed,
        )
        base.update(overrides)
        return SearchConfig(**base)


def simulated_annealing(
    initial_state: State,
    energy_fn: Callable[[State], float],
    neighbour_fn: Callable[[State, "np.random.Generator"], State],
    config: Optional[SaConfig] = None,
    trace_fn: Optional[Callable[[State, float], dict]] = None,
    stop_energy: Optional[float] = None,
) -> SaResult[State]:
    """Minimize ``energy_fn`` over states (seed-compatible front door).

    ``trace_fn(state, energy)`` may add extra per-iteration fields to the
    trace (the Fig. 4 benches log the evaluator's predicted accuracy);
    ``stop_energy`` short-circuits the search once reached.
    """
    config = config if config is not None else SaConfig()
    return run_search(
        SearchProblem(initial=initial_state, neighbour=neighbour_fn),
        energy_fn,
        strategy="sa",
        config=config.to_search_config(),
        trace_fn=trace_fn,
        stop_energy=stop_energy,
    )
