"""Generic simulated annealing (the paper's black-box optimizer).

Matches the paper's setup: 100 iterations, initial temperature 120, an
``acceptance`` scale of 1.8 inside the Metropolis criterion
``P(accept worse) = exp(-dE * acceptance / T)``, and geometric cooling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Generic, Optional, TypeVar

from repro.utils.rng import make_rng

State = TypeVar("State")


@dataclass
class SaConfig:
    """Annealing schedule parameters (paper Sec. IV-C defaults)."""

    iterations: int = 100
    t_initial: float = 120.0
    acceptance: float = 1.8
    cooling: float = 0.95
    seed: int = 0


@dataclass
class SaResult(Generic[State]):
    """Best state found plus the full search trace."""

    best_state: State
    best_energy: float
    trace: list[dict] = field(default_factory=list)

    def energies(self) -> list[float]:
        return [entry["energy"] for entry in self.trace]

    def values(self, key: str) -> list:
        return [entry.get(key) for entry in self.trace]


def simulated_annealing(
    initial_state: State,
    energy_fn: Callable[[State], float],
    neighbour_fn: Callable[[State, "np.random.Generator"], State],
    config: Optional[SaConfig] = None,
    trace_fn: Optional[Callable[[State, float], dict]] = None,
    stop_energy: Optional[float] = None,
) -> SaResult[State]:
    """Minimize ``energy_fn`` over states.

    ``trace_fn(state, energy)`` may add extra per-iteration fields to the
    trace (the Fig. 4 benches log the evaluator's predicted accuracy);
    ``stop_energy`` short-circuits the search once reached.
    """
    config = config if config is not None else SaConfig()
    rng = make_rng(config.seed)
    current = initial_state
    current_energy = energy_fn(current)
    best = current
    best_energy = current_energy
    temperature = config.t_initial
    trace: list[dict] = []

    def record(iteration: int, state: State, energy: float, accepted: bool) -> None:
        entry = {
            "iteration": iteration,
            "energy": energy,
            "best_energy": best_energy,
            "temperature": temperature,
            "accepted": accepted,
        }
        if trace_fn is not None:
            entry.update(trace_fn(state, energy))
        trace.append(entry)

    record(0, current, current_energy, True)
    for iteration in range(1, config.iterations + 1):
        candidate = neighbour_fn(current, rng)
        candidate_energy = energy_fn(candidate)
        delta = candidate_energy - current_energy
        if delta <= 0:
            accepted = True
        else:
            probability = math.exp(
                -delta * config.acceptance / max(temperature, 1e-9)
            )
            accepted = bool(rng.random() < probability)
        if accepted:
            current = candidate
            current_energy = candidate_energy
            if current_energy < best_energy:
                best = current
                best_energy = current_energy
        record(iteration, current, current_energy, accepted)
        temperature *= config.cooling
        if stop_energy is not None and best_energy <= stop_energy:
            break
    return SaResult(best_state=best, best_energy=best_energy, trace=trace)
