"""The ALMOST framework: security-aware synthesis via adversarial learning.

Pipeline (paper Fig. 3):

1. lock a design with plain RLL (:mod:`repro.locking`);
2. train a proxy attack model — ``M_resyn2`` / ``M_random`` / adversarially
   trained ``M*`` (:mod:`repro.core.proxy`, :mod:`repro.core.adversarial`);
3. search the recipe space to drive the proxy's predicted attack accuracy
   to ~50% — the paper's serial SA or any strategy in the batched search
   engine (:mod:`repro.core.search`, :mod:`repro.core.almost`);
4. ship the recipe's output netlist; evaluate against real attacks
   (:mod:`repro.attacks`).
"""

from repro.core.sa import SaConfig, SaResult, simulated_annealing
from repro.core.search import (
    SearchConfig,
    SearchProblem,
    available_strategies,
    register_strategy,
    run_search,
)
from repro.core.proxy import ProxyConfig, ProxyModel
from repro.core.adversarial import AdversarialConfig, train_adversarial_attack
from repro.core.almost import AlmostConfig, AlmostResult, AlmostDefense

__all__ = [
    "SaConfig",
    "SaResult",
    "simulated_annealing",
    "SearchConfig",
    "SearchProblem",
    "run_search",
    "register_strategy",
    "available_strategies",
    "ProxyConfig",
    "ProxyModel",
    "AdversarialConfig",
    "train_adversarial_attack",
    "AlmostConfig",
    "AlmostResult",
    "AlmostDefense",
]
