"""Proxy attack models: M_resyn2, M_random and the adversarial M*.

A proxy model predicts, without running a fresh end-to-end attack, how well
an OMLA-class attacker would do against the locked design synthesized with an
arbitrary recipe.  The three variants differ only in training data (paper
Sec. IV-A):

* ``M_resyn2`` — relock + resynthesize with the baseline ``resyn2`` only;
* ``M_random`` — relock + resynthesize with random length-10 recipes;
* ``M*``       — adversarial data augmentation (Algorithm 1).

Scoring is built for the batched search engine: recipes are memoized in a
bounded LRU keyed on the full step tuple, synthesis goes through a
recipe-prefix :class:`~repro.synth.cache.SynthCache` (a one-step recipe
mutation re-applies only the suffix), and
:meth:`ProxyModel.predicted_accuracy_batch` scores a whole candidate batch
in one vectorized GNN pass.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.attacks.omla import OmlaAttack, OmlaConfig
from repro.attacks.subgraph import extract_localities, victim_key_inputs
from repro.errors import AttackError
from repro.locking.rll import LockedCircuit
from repro.synth.cache import SynthCache
from repro.synth.engine import synthesize_and_map
from repro.synth.recipe import RESYN2, Recipe, random_recipe
from repro.utils.rng import derive_seed


@dataclass
class ProxyConfig:
    """Training-budget knobs shared by all proxy variants (scaled down)."""

    num_samples: int = 200          # paper: 1000 initial samples
    epochs: int = 40                # paper: 350
    relock_key_bits: int = 24
    num_random_recipes: int = 8     # distinct recipes behind M_random
    recipe_length: int = 10
    hops: int = 3
    seed: int = 0


@dataclass
class ProxyModel:
    """A trained accuracy evaluator bound to one locked circuit.

    ``_cache`` memoizes predicted accuracies keyed on the **full recipe
    step tuple** (the seed keyed on ``recipe.short()`` and never evicted),
    bounded to ``cache_size`` entries with LRU eviction.  ``synth_cache``
    holds recipe-prefix AIG snapshots so the search engine's one-step
    mutations skip the shared synthesis prefix; pass ``None`` to disable.
    """

    name: str
    attack: OmlaAttack
    locked: LockedCircuit
    cache_size: int = 1024
    synth_cache: Optional[SynthCache] = field(default_factory=SynthCache)
    _cache: "OrderedDict[tuple[str, ...], float]" = field(
        default_factory=OrderedDict
    )

    # -- memo table -------------------------------------------------------

    def _cache_get(self, key: tuple[str, ...]) -> Optional[float]:
        value = self._cache.get(key)
        if value is not None:
            self._cache.move_to_end(key)
        return value

    def _cache_put(self, key: tuple[str, ...], value: float) -> None:
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # -- scoring ----------------------------------------------------------

    def _synthesize(self, recipe: Recipe):
        """Prefix-cached synthesis of the locked netlist under ``recipe``."""
        _netlist, mapped = synthesize_and_map(
            self.locked.netlist, recipe, cache=self.synth_cache
        )
        return mapped

    def predicted_accuracy(self, recipe: Recipe) -> float:
        """Attack accuracy the proxy predicts for ``recipe``.

        The defender owns the locked circuit and its key, so the predicted
        accuracy is measured exactly: synthesize with the recipe, run the
        proxy on the victim key localities, compare with the true key.
        """
        cached = self._cache_get(recipe.steps)
        if cached is not None:
            return cached
        accuracy = self.attack.accuracy_on(
            self._synthesize(recipe), self.locked.key
        )
        self._cache_put(recipe.steps, accuracy)
        return accuracy

    def predicted_accuracy_batch(
        self, recipes: Sequence[Recipe]
    ) -> list[float]:
        """Score a whole candidate batch in one vectorized GNN pass.

        Memo hits and in-batch duplicates are resolved first; the remaining
        unique recipes are synthesized (prefix-cached), their key-gate
        localities packed into a single block-diagonal batch, and the model
        runs one forward for the lot.  Per-recipe values are identical to
        :meth:`predicted_accuracy`.
        """
        results: list[Optional[float]] = [None] * len(recipes)
        pending: "OrderedDict[tuple[str, ...], list[int]]" = OrderedDict()
        for index, recipe in enumerate(recipes):
            cached = self._cache_get(recipe.steps)
            if cached is not None:
                results[index] = cached
            else:
                pending.setdefault(recipe.steps, []).append(index)
        if pending:
            if self.attack.model is None:
                raise AttackError("attack model is not trained")
            from repro.ml.data import pack_graph_groups

            unique = [Recipe(steps) for steps in pending]
            groups = []
            for recipe in unique:
                mapped = self._synthesize(recipe)
                key_nets = victim_key_inputs(mapped)
                if not key_nets:
                    raise AttackError("circuit has no key inputs to attack")
                groups.append(
                    extract_localities(
                        mapped,
                        key_nets,
                        [0] * len(key_nets),  # placeholder labels
                        hops=self.attack.config.hops,
                        max_nodes=self.attack.config.max_nodes,
                    )
                )
            batch, slices = pack_graph_groups(groups)
            grouped = self.attack.model.predict_grouped(batch, slices)
            true_bits = self.locked.key.bits
            for recipe, predictions in zip(unique, grouped):
                if len(predictions) != len(true_bits):
                    raise AttackError("prediction/key size mismatch")
                accuracy = sum(
                    1
                    for predicted, truth in zip(predictions, true_bits)
                    if int(predicted) == truth
                ) / len(true_bits)
                self._cache_put(recipe.steps, accuracy)
                for index in pending[recipe.steps]:
                    results[index] = accuracy
        return [float(value) for value in results]

    def predicted_accuracy_on_circuit(self, mapped) -> float:
        """Accuracy against an externally synthesized mapped circuit."""
        return self.attack.accuracy_on(mapped, self.locked.key)


def _omla_config(config: ProxyConfig, tag: str) -> OmlaConfig:
    return OmlaConfig(
        hops=config.hops,
        epochs=config.epochs,
        relock_key_bits=config.relock_key_bits,
        seed=derive_seed(config.seed, tag),
    )


def build_resyn2_proxy(
    locked: LockedCircuit, config: Optional[ProxyConfig] = None
) -> ProxyModel:
    """``M_resyn2``: trained only on the baseline recipe's localities."""
    config = config if config is not None else ProxyConfig()
    attack = OmlaAttack(RESYN2, _omla_config(config, "resyn2"))
    data = attack.generate_training_data(
        locked.netlist,
        num_samples=config.num_samples,
        recipes=[RESYN2],
        seed=derive_seed(config.seed, "resyn2-data"),
    )
    attack.train(data)
    return ProxyModel(name="M_resyn2", attack=attack, locked=locked)


def build_random_proxy(
    locked: LockedCircuit, config: Optional[ProxyConfig] = None
) -> ProxyModel:
    """``M_random``: trained on random length-10 recipes."""
    config = config if config is not None else ProxyConfig()
    recipes = [
        random_recipe(
            config.recipe_length, seed=derive_seed(config.seed, "recipe", i)
        )
        for i in range(config.num_random_recipes)
    ]
    attack = OmlaAttack(RESYN2, _omla_config(config, "random"))
    data = attack.generate_training_data(
        locked.netlist,
        num_samples=config.num_samples,
        recipes=recipes,
        seed=derive_seed(config.seed, "random-data"),
    )
    attack.train(data)
    return ProxyModel(name="M_random", attack=attack, locked=locked)


def evaluate_on_recipe_set(
    proxy: ProxyModel, recipes: Sequence[Recipe]
) -> list[float]:
    """Predicted accuracy over a recipe set (Table I's "random set")."""
    if not recipes:
        raise AttackError("empty recipe set")
    return proxy.predicted_accuracy_batch(list(recipes))
