"""Proxy attack models: M_resyn2, M_random and the adversarial M*.

A proxy model predicts, without running a fresh end-to-end attack, how well
an OMLA-class attacker would do against the locked design synthesized with an
arbitrary recipe.  The three variants differ only in training data (paper
Sec. IV-A):

* ``M_resyn2`` — relock + resynthesize with the baseline ``resyn2`` only;
* ``M_random`` — relock + resynthesize with random length-10 recipes;
* ``M*``       — adversarial data augmentation (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.attacks.omla import OmlaAttack, OmlaConfig
from repro.attacks.subgraph import victim_key_inputs
from repro.errors import AttackError
from repro.locking.rll import LockedCircuit
from repro.synth.engine import synthesize_and_map
from repro.synth.recipe import RESYN2, Recipe, random_recipe
from repro.utils.rng import derive_seed


@dataclass
class ProxyConfig:
    """Training-budget knobs shared by all proxy variants (scaled down)."""

    num_samples: int = 200          # paper: 1000 initial samples
    epochs: int = 40                # paper: 350
    relock_key_bits: int = 24
    num_random_recipes: int = 8     # distinct recipes behind M_random
    recipe_length: int = 10
    hops: int = 3
    seed: int = 0


@dataclass
class ProxyModel:
    """A trained accuracy evaluator bound to one locked circuit."""

    name: str
    attack: OmlaAttack
    locked: LockedCircuit
    _cache: dict[str, float] = field(default_factory=dict)

    def predicted_accuracy(self, recipe: Recipe) -> float:
        """Attack accuracy the proxy predicts for ``recipe``.

        The defender owns the locked circuit and its key, so the predicted
        accuracy is measured exactly: synthesize with the recipe, run the
        proxy on the victim key localities, compare with the true key.
        """
        cache_key = recipe.short()
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        _netlist, mapped = synthesize_and_map(self.locked.netlist, recipe)
        accuracy = self.attack.accuracy_on(mapped, self.locked.key)
        self._cache[cache_key] = accuracy
        return accuracy

    def predicted_accuracy_on_circuit(self, mapped) -> float:
        """Accuracy against an externally synthesized mapped circuit."""
        return self.attack.accuracy_on(mapped, self.locked.key)


def _omla_config(config: ProxyConfig, tag: str) -> OmlaConfig:
    return OmlaConfig(
        hops=config.hops,
        epochs=config.epochs,
        relock_key_bits=config.relock_key_bits,
        seed=derive_seed(config.seed, tag),
    )


def build_resyn2_proxy(
    locked: LockedCircuit, config: Optional[ProxyConfig] = None
) -> ProxyModel:
    """``M_resyn2``: trained only on the baseline recipe's localities."""
    config = config if config is not None else ProxyConfig()
    attack = OmlaAttack(RESYN2, _omla_config(config, "resyn2"))
    data = attack.generate_training_data(
        locked.netlist,
        num_samples=config.num_samples,
        recipes=[RESYN2],
        seed=derive_seed(config.seed, "resyn2-data"),
    )
    attack.train(data)
    return ProxyModel(name="M_resyn2", attack=attack, locked=locked)


def build_random_proxy(
    locked: LockedCircuit, config: Optional[ProxyConfig] = None
) -> ProxyModel:
    """``M_random``: trained on random length-10 recipes."""
    config = config if config is not None else ProxyConfig()
    recipes = [
        random_recipe(
            config.recipe_length, seed=derive_seed(config.seed, "recipe", i)
        )
        for i in range(config.num_random_recipes)
    ]
    attack = OmlaAttack(RESYN2, _omla_config(config, "random"))
    data = attack.generate_training_data(
        locked.netlist,
        num_samples=config.num_samples,
        recipes=recipes,
        seed=derive_seed(config.seed, "random-data"),
    )
    attack.train(data)
    return ProxyModel(name="M_random", attack=attack, locked=locked)


def evaluate_on_recipe_set(
    proxy: ProxyModel, recipes: Sequence[Recipe]
) -> list[float]:
    """Predicted accuracy over a recipe set (Table I's "random set")."""
    if not recipes:
        raise AttackError("empty recipe set")
    return [proxy.predicted_accuracy(recipe) for recipe in recipes]
