"""PPA overhead flow (paper Sec. IV-F, Table III).

Compares the ALMOST-synthesized locked circuit against the plain locked
baseline, in two optimizer settings:

* ``-opt`` — technology mapping only (DC "no optimization");
* ``+opt`` — mapping followed by gate sizing / area recovery
  (:func:`repro.mapping.ppa.optimize_mapping`, DC "ultra effort").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.build import aig_from_netlist
from repro.mapping.mapper import map_aig
from repro.mapping.ppa import PpaReport, analyze_ppa, optimize_mapping
from repro.netlist.netlist import Netlist


@dataclass
class PpaComparison:
    """Overheads (%) of a variant circuit vs. a baseline, ±opt."""

    circuit: str
    area_no_opt: float
    area_opt: float
    delay_no_opt: float
    delay_opt: float
    power_no_opt: float
    power_opt: float

    def row(self) -> dict[str, float]:
        return {
            "area -opt": self.area_no_opt,
            "area +opt": self.area_opt,
            "delay -opt": self.delay_no_opt,
            "delay +opt": self.delay_opt,
            "power -opt": self.power_no_opt,
            "power +opt": self.power_opt,
        }


def _reports(netlist: Netlist) -> tuple[PpaReport, PpaReport]:
    """(-opt, +opt) PPA reports for a netlist."""
    mapped = map_aig(aig_from_netlist(netlist))
    no_opt = analyze_ppa(mapped)
    optimized = optimize_mapping(mapped)
    with_opt = analyze_ppa(optimized)
    return no_opt, with_opt


def ppa_overhead_table(
    baseline_netlist: Netlist, variant_netlist: Netlist, name: str = ""
) -> PpaComparison:
    """Table III row: overhead of ``variant`` vs. ``baseline`` (±opt)."""
    base_no, base_yes = _reports(baseline_netlist)
    var_no, var_yes = _reports(variant_netlist)
    over_no = var_no.overhead_vs(base_no)
    over_yes = var_yes.overhead_vs(base_yes)
    return PpaComparison(
        circuit=name or variant_netlist.name,
        area_no_opt=over_no["area"],
        area_opt=over_yes["area"],
        delay_no_opt=over_no["delay"],
        delay_opt=over_yes["delay"],
        power_no_opt=over_no["power"],
        power_opt=over_yes["power"],
    )
