"""Experiment flows: attacker re-synthesis (Sec. IV-E) and PPA (Sec. IV-F)."""

from repro.flows.resynthesis import (
    ResynthesisPoint,
    attacker_resynthesis_sweep,
    resynthesis_sweep_from_spec,
)
from repro.flows.ppa_flow import PpaComparison, ppa_overhead_table

__all__ = [
    "ResynthesisPoint",
    "attacker_resynthesis_sweep",
    "resynthesis_sweep_from_spec",
    "PpaComparison",
    "ppa_overhead_table",
]
