"""Experiment flows: attacker re-synthesis (Sec. IV-E) and PPA (Sec. IV-F)."""

from repro.flows.resynthesis import ResynthesisPoint, attacker_resynthesis_sweep
from repro.flows.ppa_flow import PpaComparison, ppa_overhead_table

__all__ = [
    "ResynthesisPoint",
    "attacker_resynthesis_sweep",
    "PpaComparison",
    "ppa_overhead_table",
]
