"""Attacker-side re-synthesis analysis (paper Sec. IV-E, Fig. 5).

Threat: the attacker takes the ALMOST-synthesized locked netlist and
re-synthesizes it for area or delay, hoping PPA-driven restructuring
re-exposes learnable key-gate localities.  The flow runs an SA search over
recipes minimizing area (or delay) on the ALMOST output and, at every
iteration, records both the PPA metric (normalized to the resyn2 baseline)
and the proxy-model attack accuracy — Fig. 5 plots the two series and the
defense claim is the absence of correlation between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.aig.build import aig_from_netlist
from repro.core.proxy import ProxyModel
from repro.core.search import SearchConfig, SearchProblem, run_search
from repro.mapping.mapper import map_aig
from repro.mapping.ppa import analyze_ppa
from repro.netlist.netlist import Netlist
from repro.synth.cache import SynthCache
from repro.synth.engine import apply_recipe
from repro.synth.recipe import RESYN2, TRANSFORM_NAMES, Recipe, random_recipe
from repro.utils.rng import derive_seed


@dataclass
class ResynthesisPoint:
    """One SA iteration of the attacker's re-synthesis search."""

    iteration: int
    recipe: str
    metric_ratio: float      # area or delay vs. the resyn2 baseline
    attack_accuracy: float


def attacker_resynthesis_sweep(
    almost_netlist: Netlist,
    proxy: ProxyModel,
    objective: str = "delay",
    iterations: int = 20,
    recipe_length: int = 10,
    seed: int = 0,
    exact_verify: bool = False,
) -> list[ResynthesisPoint]:
    """Run the attacker's PPA-driven recipe search on an ALMOST netlist.

    Returns per-iteration points pairing the optimized metric (normalized to
    the resyn2 baseline of the same netlist) with the attack accuracy of the
    proxy model on the re-synthesized circuit.

    With ``exact_verify`` every evaluated recipe's output is SAT-proven
    equivalent to the input netlist (see :mod:`repro.sat`) instead of being
    trusted — the re-synthesis threat analysis is only meaningful while the
    attacker's transformations stay function-preserving.
    """
    if objective not in ("area", "delay"):
        raise ValueError("objective must be 'area' or 'delay'")
    aig = aig_from_netlist(almost_netlist)
    baseline_mapped = map_aig(apply_recipe(aig, RESYN2))
    baseline = analyze_ppa(baseline_mapped)
    baseline_value = baseline.area if objective == "area" else baseline.delay

    points: list[ResynthesisPoint] = []
    evaluations: dict[str, tuple[float, float]] = {}
    # The attacker's SA mutates one step at a time, so its evaluations share
    # long synthesis prefixes — the same prefix cache the defender uses.
    synth_cache = SynthCache()

    def measure(recipe: Recipe) -> tuple[float, float]:
        cached = evaluations.get(recipe.short())
        if cached is not None:
            return cached
        optimized = apply_recipe(aig, recipe, cache=synth_cache)
        if exact_verify:
            from repro.synth.engine import verify_transformation

            verify_transformation(aig, optimized, "sat")
        mapped = map_aig(optimized)
        report = analyze_ppa(mapped)
        value = report.area if objective == "area" else report.delay
        ratio = value / baseline_value if baseline_value else 1.0
        accuracy = proxy.predicted_accuracy_on_circuit(mapped)
        evaluations[recipe.short()] = (ratio, accuracy)
        return ratio, accuracy

    def energy(recipe: Recipe) -> float:
        ratio, _accuracy = measure(recipe)
        return ratio

    def neighbour(recipe: Recipe, rng) -> Recipe:
        position = int(rng.integers(len(recipe)))
        step = TRANSFORM_NAMES[int(rng.integers(len(TRANSFORM_NAMES)))]
        return recipe.with_step(position, step)

    start = random_recipe(recipe_length, seed=derive_seed(seed, "start"))
    result = run_search(
        SearchProblem(initial=start, neighbour=neighbour),
        energy,
        strategy="sa",
        config=SearchConfig(iterations=iterations, seed=derive_seed(seed, "sa")),
        trace_fn=lambda recipe, e: {"recipe": recipe.short()},
    )
    for entry in result.trace:
        ratio, accuracy = evaluations[entry["recipe"]]
        points.append(
            ResynthesisPoint(
                iteration=entry["iteration"],
                recipe=entry["recipe"],
                metric_ratio=ratio,
                attack_accuracy=accuracy,
            )
        )
    return points


def resynthesis_sweep_from_spec(
    spec,
    proxy_config=None,
    objective: str = "delay",
    iterations: int = 20,
    recipe_length: int = 10,
    seed: int = 0,
    exact_verify: bool = False,
    runner=None,
) -> list[ResynthesisPoint]:
    """Spec-driven entry: run the sweep on a pipeline-built ALMOST netlist.

    ``spec`` is an :class:`repro.pipeline.ExperimentSpec` whose
    benchmark/lock/defense/synth stages produce the defender's shipped
    netlist — executed through the :class:`repro.pipeline.Runner` so a
    warm artifact cache skips straight to the SA search.  The proxy is the
    defender-side ``M_resyn2`` rebuilt from the cached lock artifact.
    """
    from repro.core.proxy import build_resyn2_proxy
    from repro.pipeline import Runner

    runner = runner if runner is not None else Runner()
    runner.validate(spec)
    artifacts = runner.cell_artifacts(spec)
    locked = artifacts["lock"].as_locked_circuit()
    proxy = build_resyn2_proxy(locked, proxy_config)
    return attacker_resynthesis_sweep(
        artifacts["synth"].netlist,
        proxy,
        objective=objective,
        iterations=iterations,
        recipe_length=recipe_length,
        seed=seed,
        exact_verify=exact_verify,
    )


def accuracy_metric_correlation(points: list[ResynthesisPoint]) -> float:
    """Pearson correlation between metric ratio and attack accuracy.

    Fig. 5's claim is that this stays near zero: optimizing PPA does not
    hand the attacker accuracy back.
    """
    import numpy as np

    ratios = np.array([p.metric_ratio for p in points])
    accs = np.array([p.attack_accuracy for p in points])
    if ratios.std() == 0 or accs.std() == 0:
        return 0.0
    return float(np.corrcoef(ratios, accs)[0, 1])
