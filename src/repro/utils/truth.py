"""Truth-table arithmetic on Python integers.

A truth table over ``n`` variables is stored as an integer whose bit ``m`` is
the function value on the minterm with variable assignment ``m`` (variable
``i`` equals bit ``i`` of ``m``).  Python's arbitrary-precision integers make
this exact and fast for the cut sizes synthesis needs (up to ~12 inputs, i.e.
4096-bit integers).

The :class:`TruthTable` wrapper carries ``nvars`` alongside the bits and
provides boolean algebra, cofactoring, variable support analysis, permutation
and negation transforms — everything the rewriting library, refactoring and
cell matching require.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import permutations
from typing import Iterator, Sequence

import numpy as np

MAX_VARS = 16


@lru_cache(maxsize=None)
def _var_mask(var: int, nvars: int) -> int:
    """Truth table (as int) of the projection function ``x_var`` on nvars."""
    if not 0 <= var < nvars:
        raise ValueError(f"variable {var} out of range for {nvars} vars")
    block = (1 << (1 << var)) - 1
    period = 1 << (var + 1)
    out = 0
    for start in range(1 << var, 1 << nvars, period):
        out |= block << start
    return out


@lru_cache(maxsize=None)
def _full_mask(nvars: int) -> int:
    return (1 << (1 << nvars)) - 1


@dataclass(frozen=True)
class TruthTable:
    """An ``nvars``-input boolean function stored as a bitmask integer."""

    bits: int
    nvars: int

    def __post_init__(self) -> None:
        if not 0 <= self.nvars <= MAX_VARS:
            raise ValueError(f"nvars must be in [0, {MAX_VARS}], got {self.nvars}")
        if self.bits & ~_full_mask(self.nvars):
            raise ValueError("truth-table bits exceed 2**nvars entries")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def const(value: bool, nvars: int) -> "TruthTable":
        """Constant-0 or constant-1 function of ``nvars`` variables."""
        return TruthTable(_full_mask(nvars) if value else 0, nvars)

    @staticmethod
    def var(index: int, nvars: int) -> "TruthTable":
        """The projection function ``f = x_index``."""
        return TruthTable(_var_mask(index, nvars), nvars)

    @staticmethod
    def from_values(values: Sequence[int]) -> "TruthTable":
        """Build from a list of 0/1 output values, minterm 0 first."""
        n = len(values)
        if n == 0 or n & (n - 1):
            raise ValueError("value list length must be a power of two")
        nvars = n.bit_length() - 1
        bits = 0
        for minterm, value in enumerate(values):
            if value:
                bits |= 1 << minterm
        return TruthTable(bits, nvars)

    # -- basic algebra -----------------------------------------------------

    @property
    def mask(self) -> int:
        return _full_mask(self.nvars)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.bits ^ self.mask, self.nvars)

    def _check(self, other: "TruthTable") -> None:
        if self.nvars != other.nvars:
            raise ValueError("truth tables have different variable counts")

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.bits & other.bits, self.nvars)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.bits | other.bits, self.nvars)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.bits ^ other.bits, self.nvars)

    def is_const0(self) -> bool:
        return self.bits == 0

    def is_const1(self) -> bool:
        return self.bits == self.mask

    def count_ones(self) -> int:
        """Number of satisfying minterms."""
        return bin(self.bits).count("1")

    def evaluate(self, assignment: Sequence[int]) -> int:
        """Evaluate on a 0/1 assignment, one value per variable."""
        if len(assignment) != self.nvars:
            raise ValueError("assignment length does not match nvars")
        minterm = 0
        for i, value in enumerate(assignment):
            if value:
                minterm |= 1 << i
        return (self.bits >> minterm) & 1

    def minterms(self) -> Iterator[int]:
        """Yield the satisfying minterm indices in increasing order."""
        bits = self.bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    # -- cofactors and support ---------------------------------------------

    def cofactor(self, var: int, value: int) -> "TruthTable":
        """Shannon cofactor with ``x_var`` fixed to ``value`` (same nvars)."""
        vmask = _var_mask(var, self.nvars)
        shift = 1 << var
        if value:
            half = self.bits & vmask
            return TruthTable(half | (half >> shift), self.nvars)
        half = self.bits & ~vmask & self.mask
        return TruthTable(half | ((half << shift) & self.mask), self.nvars)

    def depends_on(self, var: int) -> bool:
        """True if the function actually depends on ``x_var``."""
        return self.cofactor(var, 0).bits != self.cofactor(var, 1).bits

    def support(self) -> tuple[int, ...]:
        """Indices of variables the function depends on."""
        return tuple(v for v in range(self.nvars) if self.depends_on(v))

    def shrink_to_support(self) -> tuple["TruthTable", tuple[int, ...]]:
        """Project onto the true support; returns (table, original indices)."""
        sup = self.support()
        values = []
        for mint in range(1 << len(sup)):
            assignment = [0] * self.nvars
            for j, var in enumerate(sup):
                assignment[var] = (mint >> j) & 1
            values.append(self.evaluate(assignment))
        return TruthTable.from_values(values) if sup else TruthTable(
            self.bits & 1, 0
        ), sup

    # -- transforms ----------------------------------------------------------

    def permute(self, perm: Sequence[int]) -> "TruthTable":
        """Relabel variables: new variable ``i`` is old variable ``perm[i]``."""
        if sorted(perm) != list(range(self.nvars)):
            raise ValueError("perm must be a permutation of variable indices")
        values = []
        for minterm in range(1 << self.nvars):
            old_minterm = 0
            for new_var in range(self.nvars):
                if (minterm >> new_var) & 1:
                    old_minterm |= 1 << perm[new_var]
            values.append((self.bits >> old_minterm) & 1)
        return TruthTable.from_values(values)

    def flip(self, var: int) -> "TruthTable":
        """Complement input ``var`` (substitute ``x_var -> !x_var``)."""
        vmask = _var_mask(var, self.nvars)
        shift = 1 << var
        hi = self.bits & vmask
        lo = self.bits & ~vmask & self.mask
        return TruthTable((hi >> shift) | ((lo << shift) & self.mask), self.nvars)

    # -- NPN canonization ----------------------------------------------------

    def npn_canon(self) -> tuple["TruthTable", "NpnTransform"]:
        """Exhaustive NPN-canonical form (practical for nvars <= 5).

        Returns the canonical representative (smallest ``bits`` over all input
        permutations, input negations and output negation) and the transform
        that maps *this* function onto the canonical one.
        """
        if self.nvars > 5:
            raise ValueError("exhaustive NPN canonization limited to 5 vars")
        bits, perm, neg_mask, out_neg = _npn_canon_bits(self.bits, self.nvars)
        return TruthTable(bits, self.nvars), NpnTransform(
            perm=perm, input_negation=neg_mask, output_negation=bool(out_neg)
        )

    def __str__(self) -> str:
        width = 1 << self.nvars
        return format(self.bits, f"0{max(width // 4, 1)}x")


@lru_cache(maxsize=None)
def _npn_transform_tables(nvars: int) -> tuple[np.ndarray, list[tuple]]:
    """Minterm source-index matrix for every (perm, input-negation) pair.

    Row ``r`` of the matrix maps transform ``r``: entry ``m`` is the source
    minterm whose value lands at minterm ``m`` of the transformed function.
    For transform (perm, neg): ``g(y) = f(x)`` with ``x[perm[i]] = y_i ^
    neg_i``, so the source minterm for ``m`` sets bit ``perm[i]`` to
    ``bit_i(m) ^ neg_i``.
    """
    size = 1 << nvars
    rows = []
    metas = []
    for perm in permutations(range(nvars)):
        for neg_mask in range(1 << nvars):
            src = np.zeros(size, dtype=np.int64)
            for minterm in range(size):
                source = 0
                for i in range(nvars):
                    bit = ((minterm >> i) & 1) ^ ((neg_mask >> i) & 1)
                    if bit:
                        source |= 1 << perm[i]
                src[minterm] = source
            rows.append(src)
            metas.append((tuple(perm), neg_mask))
    return np.stack(rows), metas


_POW2_CACHE: dict[int, np.ndarray] = {}


@lru_cache(maxsize=1 << 18)
def _npn_canon_bits(bits: int, nvars: int) -> tuple[int, tuple, int, int]:
    """Vectorized exhaustive NPN canonization on raw bits (memoized)."""
    size = 1 << nvars
    matrix, metas = _npn_transform_tables(nvars)
    values = np.array([(bits >> m) & 1 for m in range(size)], dtype=np.int64)
    pow2 = _POW2_CACHE.get(nvars)
    if pow2 is None:
        pow2 = (1 << np.arange(size, dtype=np.object_))
        _POW2_CACHE[nvars] = pow2
    transformed = values[matrix]  # (num_transforms, size)
    packed = transformed.astype(np.object_) @ pow2
    full = (1 << size) - 1
    complemented = packed ^ full
    best_pos = int(np.argmin(packed))
    best_neg = int(np.argmin(complemented))
    if packed[best_pos] <= complemented[best_neg]:
        perm, neg_mask = metas[best_pos]
        return int(packed[best_pos]), perm, neg_mask, 0
    perm, neg_mask = metas[best_neg]
    return int(complemented[best_neg]), perm, neg_mask, 1


@dataclass(frozen=True)
class NpnTransform:
    """Records how a function was mapped to its NPN-canonical form.

    ``canonical = negate_output?( permute(negate_inputs(original)) )`` where
    new variable ``i`` of the permuted function reads old variable
    ``perm[i]``, and input ``var`` of the *permuted* function is complemented
    when bit ``var`` of ``input_negation`` is set.
    """

    perm: tuple[int, ...]
    input_negation: int
    output_negation: bool

    def apply(self, table: TruthTable) -> TruthTable:
        """Apply this transform to ``table`` (maps original -> canonical)."""
        out = table.permute(self.perm)
        for var in range(table.nvars):
            if (self.input_negation >> var) & 1:
                out = out.flip(var)
        if self.output_negation:
            out = ~out
        return out

    def leaf_order(self, leaves: Sequence[object]) -> list[tuple[object, bool]]:
        """Map canonical-variable positions back onto original leaves.

        Given the original function's leaf operands (one per variable), return
        for each *canonical* variable position the (leaf, complemented) pair
        that should feed a structure implementing the canonical function so
        the result computes the original function (up to output negation,
        reported separately by :attr:`output_negation`).
        """
        return [
            (leaves[self.perm[i]], bool((self.input_negation >> i) & 1))
            for i in range(len(self.perm))
        ]
