"""Deterministic random-number-generator helpers.

Every stochastic component in the library accepts an integer ``seed`` and
builds its generator through :func:`make_rng`, so whole experiments replay
bit-for-bit.  :func:`derive_seed` gives independent child streams from a parent
seed plus a string tag (for example one stream per benchmark circuit) without
the correlated-stream pitfalls of ``seed + i`` arithmetic.
"""

from __future__ import annotations

import hashlib

import numpy as np

_SEED_MODULUS = 2**63 - 1


def derive_seed(seed: int, *tags: object) -> int:
    """Derive a child seed from ``seed`` and any number of hashable tags.

    The derivation is a SHA-256 hash of the textual representation, so child
    streams for different tags are statistically independent and stable across
    runs and platforms.

    >>> derive_seed(7, "c1355", 64) == derive_seed(7, "c1355", 64)
    True
    >>> derive_seed(7, "c1355") != derive_seed(7, "c1908")
    True
    """
    text = repr((int(seed),) + tags).encode("utf-8")
    digest = hashlib.sha256(text).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_MODULUS


def make_rng(seed: int | None) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator` for ``seed``.

    ``None`` yields a non-deterministic generator; library code should always
    pass an integer so experiments are reproducible.
    """
    return np.random.default_rng(seed)
