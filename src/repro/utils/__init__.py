"""Shared utilities: deterministic RNG construction and truth-table math."""

from repro.utils.rng import derive_seed, make_rng
from repro.utils.truth import TruthTable

__all__ = ["derive_seed", "make_rng", "TruthTable"]
